"""Request batching and admission control for the multiply service.

The scheduler owns one FIFO of accepted requests and turns it into
*waves*: the head request is popped, and every queued request that is
**compatible** with it — same algorithm (``"pb"`` only; the planner and
the column kernels don't fuse), same semiring, same ``PBConfig`` — is
drained into the same wave, bounded by ``max_batch`` requests and
``max_batch_tuples`` estimated flops.  Compatible waves of two or more
execute as a single block-diagonally stacked PB multiply
(:meth:`repro.session.Session.multiply_many_detailed`); everything else
runs as a wave of one.

Batching is *emergent*, not delayed: with the default
``max_wait_s = 0`` a lone request is dispatched immediately (no added
latency at low load), and waves grow naturally under concurrency
because requests that arrive while a wave is computing pile up in the
queue.  Setting ``max_wait_s > 0`` additionally holds the head back to
give a forming wave time to fill — a throughput-over-latency knob.

Admission control is a bounded queue in two currencies: requests
(``max_pending``) and estimated flops (``max_pending_tuples``, the
proxy for arena-pool pressure — queued tuples are bytes the pool will
soon have to lease).  A request over either bound is rejected with a
``retry_after_s`` hint derived from the EWMA wave duration and the
current backlog, so well-behaved clients back off proportionally to
actual service speed.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from dataclasses import dataclass

__all__ = ["ServeRequest", "Wave", "Rejection", "BatchScheduler"]


@dataclass
class ServeRequest:
    """One accepted multiply request, queued for a wave."""

    id: object
    a_csc: object
    b_csr: object
    algorithm: str
    semiring: str
    config: object  # resolved PBConfig
    tuples: int  # estimated flops (admission + batch budgeting)
    future: asyncio.Future = None
    enqueued_at: float = 0.0

    @property
    def compat_token(self) -> tuple:
        """Wave-compatibility key: requests fuse iff tokens are equal
        and the algorithm is the stackable ``"pb"``."""
        return (self.algorithm, self.semiring, repr(self.config))

    @property
    def fusable(self) -> bool:
        return self.algorithm == "pb"


@dataclass
class Wave:
    """One dispatch unit: an ordered group of compatible requests."""

    id: int
    requests: list
    retried: bool = False  # one re-run allowed after a worker death

    @property
    def tuples(self) -> int:
        return sum(r.tuples for r in self.requests)


@dataclass
class Rejection:
    """Admission-control verdict for an over-capacity request."""

    reason: str
    retry_after_s: float


class BatchScheduler:
    def __init__(
        self,
        execute,
        *,
        max_pending: int = 256,
        max_pending_tuples: int = 64_000_000,
        max_batch: int = 32,
        max_batch_tuples: int = 8_000_000,
        max_wait_s: float = 0.0,
        fuse: bool = True,
        solo_tuples: int | None = None,
    ):
        self._execute = execute  # async callable(Wave)
        self.max_pending = int(max_pending)
        self.max_pending_tuples = int(max_pending_tuples)
        self.max_batch = max(1, int(max_batch))
        self.max_batch_tuples = int(max_batch_tuples)
        self.max_wait_s = float(max_wait_s)
        self.fuse = bool(fuse)
        #: Requests at or above this many estimated flops always ride a
        #: wave of one — the server runs them on the sharded executor,
        #: which wants the whole machine to itself; fusing them into a
        #: stacked PB multiply would both defeat the shard routing and
        #: stall the small requests behind the giant.  ``None`` — off.
        self.solo_tuples = None if solo_tuples is None else int(solo_tuples)
        self._pending: deque = deque()
        self._pending_tuples = 0
        self._wake = asyncio.Event()
        self._closed = False
        self._wave_ids = itertools.count(1)
        #: EWMA of recent wave wall-clock seconds — the service-speed
        #: estimate behind retry_after hints (seeded pessimistically so
        #: the very first reject does not suggest an instant retry).
        self.wave_ewma_s = 0.05
        self.waves_dispatched = 0

    # -- admission -----------------------------------------------------------
    def submit(self, request: ServeRequest) -> Rejection | None:
        """Accept a request into the queue, or return a :class:`Rejection`."""
        if self._closed:
            return Rejection("server is shutting down", 0.0)
        if len(self._pending) >= self.max_pending:
            return Rejection(
                f"queue full ({self.max_pending} requests pending)",
                self._retry_after(),
            )
        if (
            self._pending_tuples + request.tuples > self.max_pending_tuples
            and self._pending
        ):
            # An oversized lone request on an empty queue is admitted —
            # rejecting it forever would livelock a legitimate client.
            return Rejection(
                f"queue full ({self._pending_tuples} tuples pending)",
                self._retry_after(),
            )
        request.enqueued_at = time.perf_counter()
        self._pending.append(request)
        self._pending_tuples += request.tuples
        self._wake.set()
        return None

    def _retry_after(self) -> float:
        # Backlog drains one wave at a time: expected wait is roughly
        # (queued waves ahead) x (EWMA wave seconds).
        waves_ahead = max(1, -(-len(self._pending) // self.max_batch))
        return float(min(5.0, max(0.005, waves_ahead * self.wave_ewma_s)))

    # -- wave formation ------------------------------------------------------
    def _solo(self, req: ServeRequest) -> bool:
        return self.solo_tuples is not None and req.tuples >= self.solo_tuples

    def _next_wave(self) -> Wave:
        head = self._pending.popleft()
        self._pending_tuples -= head.tuples
        requests = [head]
        if self.fuse and head.fusable and not self._solo(head):
            tuples = head.tuples
            token = head.compat_token
            keep = deque()
            while self._pending and len(requests) < self.max_batch:
                req = self._pending.popleft()
                if (
                    req.compat_token == token
                    and tuples + req.tuples <= self.max_batch_tuples
                    and not self._solo(req)
                ):
                    requests.append(req)
                    tuples += req.tuples
                    self._pending_tuples -= req.tuples
                else:
                    keep.append(req)
            # Unmatched requests keep their arrival order.
            keep.extend(self._pending)
            self._pending = keep
        return Wave(id=next(self._wave_ids), requests=requests)

    # -- main loop -----------------------------------------------------------
    async def run(self) -> None:
        """Dispatch loop: forms waves and awaits their execution.

        Waves run one at a time — the session is a single compute
        resource — so queue time under load *is* the batching window:
        requests arriving during a wave join the next one.
        """
        while True:
            if not self._pending:
                if self._closed:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            if self.max_wait_s > 0 and len(self._pending) < self.max_batch:
                head_age = time.perf_counter() - self._pending[0].enqueued_at
                if head_age < self.max_wait_s:
                    await asyncio.sleep(self.max_wait_s - head_age)
            wave = self._next_wave()
            t0 = time.perf_counter()
            await self._execute(wave)
            elapsed = time.perf_counter() - t0
            self.wave_ewma_s = 0.7 * self.wave_ewma_s + 0.3 * elapsed
            self.waves_dispatched += 1

    def close(self) -> list:
        """Stop accepting work; returns the requests still queued (the
        caller fails them out)."""
        self._closed = True
        drained = list(self._pending)
        self._pending.clear()
        self._pending_tuples = 0
        self._wake.set()
        return drained

    def gauges(self) -> dict:
        return {
            "pending": len(self._pending),
            "pending_tuples": self._pending_tuples,
            "max_pending": self.max_pending,
            "max_pending_tuples": self.max_pending_tuples,
            "max_batch": self.max_batch,
            "max_batch_tuples": self.max_batch_tuples,
            "max_wait_s": self.max_wait_s,
            "fuse": self.fuse,
            "solo_tuples": self.solo_tuples,
            "waves_dispatched": self.waves_dispatched,
            "wave_ewma_s": self.wave_ewma_s,
        }
