"""The multiply server: asyncio front end over one shared Session.

Architecture (DESIGN.md §15)::

    clients ──frames──▶ asyncio loop ──submit──▶ BatchScheduler
                                                     │ waves
                                                     ▼
                                        compute thread (one)
                                                     │
                                             shared Session
                                   (warm pool · arena pool · plan
                                    cache · machine profile · JIT)

* The **event loop** owns sockets, framing, decoding, admission and
  response encoding.  It never blocks on a multiply.
* One **compute thread** serializes all Session use (a Session is a
  single compute resource: one warm pool, one arena pool).  Waves are
  handed over with ``run_in_executor``; while a wave computes, the
  loop keeps accepting requests — which is exactly how batches form.
* **Every** client shares the one Session, hence one plan cache, one
  machine profile, one warm JIT tier and one recycled arena pool.

Failure model: a pool worker dying mid-wave surfaces as
``BrokenProcessPool``.  The Session already swaps in a fresh engine and
retries once per call; the server adds one wave-level re-run on top,
and only then fails the wave's requests with ``code="error"`` — later
requests run on the replacement pool.  Admission control rejects with
``code="rejected"`` + ``retry_after_s`` before the queue can grow
without bound (the queued-tuples bound is the arena-pool pressure
proxy).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..core.config import PBConfig
from ..errors import ShapeError
from ..kernels.dispatch import get_algorithm
from ..semiring import get_semiring
from ..session import Session
from .metrics import ServerMetrics
from .protocol import ProtocolError, decode_matrix, encode_matrix, read_frame, write_frame
from .scheduler import BatchScheduler, ServeRequest, Wave

__all__ = ["ServeConfig", "MultiplyServer"]


@dataclass
class ServeConfig:
    """Network + scheduling knobs for one :class:`MultiplyServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 — ephemeral; read the bound port off .address
    unix_path: str | None = None  # set to serve on a unix socket instead
    max_pending: int = 256
    max_pending_tuples: int = 64_000_000
    max_batch: int = 32
    max_batch_tuples: int = 8_000_000
    max_wait_s: float = 0.0
    fuse: bool = True
    #: Route large ``"pb"``/``"tiled"`` requests through the sharded
    #: executor (:mod:`repro.core.sharded`): worker count (int or
    #: ``"auto"``), or ``None`` — sharded routing off.  Small requests
    #: keep wave batching either way.
    shards: int | str | None = None
    #: Flop threshold for the sharded route: requests at or above this
    #: many estimated tuples run sharded (and ride a wave of one — see
    #: ``BatchScheduler.solo_tuples``); below it they batch as usual.
    shard_tuples: int = 32_000_000


class MultiplyServer:
    """Long-running SpGEMM service around one shared :class:`Session`.

    Usage::

        server = MultiplyServer(PBConfig(), ServeConfig(port=7077))
        await server.start()
        await server.serve_forever()   # until .close() or a shutdown op
    """

    def __init__(
        self,
        config: PBConfig | None = None,
        serve: ServeConfig | None = None,
        *,
        start_method: str | None = None,
        warm: bool = False,
    ):
        self.config = config or PBConfig()
        self.serve_config = serve or ServeConfig()
        self._start_method = start_method
        self._warm = warm
        self.session: Session | None = None
        self.metrics = ServerMetrics()
        self.scheduler: BatchScheduler | None = None
        self._server = None
        self._scheduler_task = None
        self._compute: ThreadPoolExecutor | None = None
        self._started = False
        self._closed = False
        self._done = asyncio.Event()
        self.address = None  # (host, port) or unix path once started

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "MultiplyServer":
        if self._started:
            return self
        self._started = True
        self.session = Session(
            self.config, start_method=self._start_method, warm=self._warm
        )
        self._compute = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-compute"
        )
        sc = self.serve_config
        self.scheduler = BatchScheduler(
            self._execute_wave,
            max_pending=sc.max_pending,
            max_pending_tuples=sc.max_pending_tuples,
            max_batch=sc.max_batch,
            max_batch_tuples=sc.max_batch_tuples,
            max_wait_s=sc.max_wait_s,
            fuse=sc.fuse,
            solo_tuples=sc.shard_tuples if sc.shards is not None else None,
        )
        self._scheduler_task = asyncio.create_task(self.scheduler.run())
        if sc.unix_path:
            self._server = await asyncio.start_unix_server(
                self._on_client, path=sc.unix_path
            )
            self.address = sc.unix_path
        else:
            self._server = await asyncio.start_server(
                self._on_client, host=sc.host, port=sc.port
            )
            self.address = self._server.sockets[0].getsockname()[:2]
        return self

    async def serve_forever(self) -> None:
        """Block until :meth:`close` (or a client ``shutdown`` op)."""
        await self._done.wait()

    async def close(self) -> None:
        """Drain, reject queued work, and tear everything down
        (idempotent).  The Session close unlinks every pooled shm
        segment — a stopped server leaves ``/dev/shm`` clean."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.scheduler is not None:
            for req in self.scheduler.close():
                if not req.future.done():
                    req.future.set_exception(
                        ConnectionError("server shutting down")
                    )
        if self._scheduler_task is not None:
            await self._scheduler_task
        if self._compute is not None:
            self._compute.shutdown(wait=True)
        if self.session is not None:
            self.session.close()
        self._done.set()

    # -- connection handling -------------------------------------------------
    async def _on_client(self, reader, writer) -> None:
        self.metrics.bump("connections")
        write_lock = asyncio.Lock()
        tasks = set()
        try:
            await self._client_loop(reader, writer, write_lock, tasks)
        except asyncio.CancelledError:
            # Server close cancels handler tasks mid-read; finish the
            # teardown normally so shutdown stays silent.
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _client_loop(self, reader, writer, write_lock, tasks) -> None:
        while True:
            try:
                msg = await read_frame(reader)
            except ProtocolError as exc:
                self.metrics.bump("bad_requests")
                try:
                    await write_frame(
                        writer, _error(None, "bad_request", str(exc)), write_lock
                    )
                except (ConnectionError, ProtocolError):
                    pass
                return
            if msg is None:
                return
            # Each request is its own task so many multiplies can be in
            # flight per connection (the client multiplexes by id); the
            # writer lock keeps frames whole.
            task = asyncio.create_task(self._dispatch(msg, writer, write_lock))
            tasks.add(task)
            task.add_done_callback(tasks.discard)

    async def _dispatch(self, msg, writer, write_lock) -> None:
        if not isinstance(msg, dict):
            self.metrics.bump("bad_requests")
            await self._safe_write(
                writer, _error(None, "bad_request", "frame must be an object"),
                write_lock,
            )
            return
        rid = msg.get("id")
        op = msg.get("op")
        try:
            if op == "ping":
                await self._safe_write(writer, {"id": rid, "ok": True}, write_lock)
            elif op == "stats":
                await self._safe_write(
                    writer, {"id": rid, "ok": True, "stats": self.stats()},
                    write_lock,
                )
            elif op == "shutdown":
                await self._safe_write(writer, {"id": rid, "ok": True}, write_lock)
                asyncio.get_running_loop().create_task(self.close())
            elif op == "multiply":
                await self._handle_multiply(msg, rid, writer, write_lock)
            else:
                self.metrics.bump("bad_requests")
                await self._safe_write(
                    writer, _error(rid, "bad_request", f"unknown op {op!r}"),
                    write_lock,
                )
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass  # client went away mid-response

    async def _safe_write(self, writer, obj, lock) -> None:
        try:
            await write_frame(writer, obj, lock)
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass

    # -- multiply path -------------------------------------------------------
    async def _handle_multiply(self, msg, rid, writer, write_lock) -> None:
        t_recv = time.perf_counter()
        try:
            request = self._parse_multiply(msg, rid)
        except (ProtocolError, ShapeError, ValueError, KeyError, TypeError) as exc:
            self.metrics.bump("bad_requests")
            await self._safe_write(
                writer, _error(rid, "bad_request", str(exc)), write_lock
            )
            return
        rejection = self.scheduler.submit(request)
        if rejection is not None:
            self.metrics.bump("rejected")
            err = _error(rid, "rejected", rejection.reason)
            err["error"]["retry_after_s"] = rejection.retry_after_s
            await self._safe_write(writer, err, write_lock)
            return
        self.metrics.bump("requests")
        try:
            payload = await request.future
        except ConnectionError as exc:  # server shutdown drained the queue
            await self._safe_write(
                writer, _error(rid, "rejected", str(exc)), write_lock
            )
            return
        if "c" in payload:
            self.metrics.bump("responses_ok")
        else:
            self.metrics.bump("responses_error")
        payload["timings"]["total_s"] = time.perf_counter() - t_recv
        self.metrics.record_request(
            payload["timings"]["total_s"], payload["timings"]["queue_wait_s"]
        )
        response = {"id": rid, "ok": "c" in payload, **payload}
        if "c" in payload:
            response["c"] = encode_matrix(payload["c"])
        await self._safe_write(writer, response, write_lock)

    def _parse_multiply(self, msg, rid) -> ServeRequest:
        from ..matrix.stats import total_flops

        a = decode_matrix(msg["a"])
        b = decode_matrix(msg["b"])
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"cannot multiply {a.shape} by {b.shape}")
        algorithm = msg.get("algorithm", "pb")
        if not isinstance(algorithm, str):
            raise ProtocolError("algorithm must be a string")
        if algorithm != "auto":
            get_algorithm(algorithm)  # raises DispatchError on unknown names
        semiring = msg.get("semiring", "plus_times")
        get_semiring(semiring)  # raises KeyError on unknown names
        overrides = msg.get("config") or {}
        if not isinstance(overrides, dict):
            raise ProtocolError("config must be an object of PBConfig overrides")
        config = self.config.with_(**overrides) if overrides else self.config
        a_csc = a.to_csc()
        return ServeRequest(
            id=rid,
            a_csc=a_csc,
            b_csr=b,
            algorithm=algorithm,
            semiring=semiring,
            config=config,
            tuples=int(total_flops(a_csc, b)),
            future=asyncio.get_running_loop().create_future(),
        )

    # -- wave execution ------------------------------------------------------
    async def _execute_wave(self, wave: Wave) -> None:
        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()
        queue_waits = [t0 - r.enqueued_at for r in wave.requests]
        self.metrics.bump("batches")
        if len(wave.requests) >= 2:
            self.metrics.bump("fused_batches")
            self.metrics.bump("batched_requests", by=len(wave.requests))
        try:
            outcomes = await loop.run_in_executor(
                self._compute, self._run_wave_sync, wave
            )
        except Exception as exc:  # pragma: no cover - defensive
            outcomes = [("error", f"{type(exc).__name__}: {exc}")] * len(
                wave.requests
            )
        wave_s = time.perf_counter() - t0
        fused = len(wave.requests) >= 2
        for i, (request, outcome) in enumerate(zip(wave.requests, outcomes)):
            kind, value = outcome[0], outcome[1]
            batch_info = {
                "id": wave.id,
                "size": len(wave.requests),
                "index": i,
                "fused": fused and kind == "ok",
            }
            timings = {
                "queue_wait_s": queue_waits[i],
                "wave_s": wave_s,
            }
            if kind == "ok":
                c, phase_seconds, compute_s, plan = value
                timings["compute_s"] = compute_s
                timings["phase_seconds"] = phase_seconds
                payload = {
                    "c": c,
                    "timings": timings,
                    "batch": batch_info,
                    "plan": plan,
                }
            else:
                timings["compute_s"] = wave_s
                payload = {
                    "timings": timings,
                    "batch": batch_info,
                    "error": {"code": "error", "message": value},
                }
            if not request.future.done():
                request.future.set_result(payload)

    def _run_wave_sync(self, wave: Wave) -> list:
        """Compute-thread entry: run one wave, with one wave-level
        re-run after a worker death (on top of the Session's own
        per-call engine replacement)."""
        try:
            return self._run_wave_once(wave)
        except BrokenProcessPool:
            if wave.retried:
                raise  # pragma: no cover - second death in one wave
            wave.retried = True
            self.metrics.bump("wave_retries")
            return self._run_wave_once(wave)

    def _run_wave_once(self, wave: Wave) -> list:
        session = self.session
        reqs = wave.requests
        if len(reqs) >= 2:
            # Compatible by construction: one stacked PB multiply.
            head = reqs[0]
            t0 = time.perf_counter()
            products, detail = session.multiply_many_detailed(
                [(r.a_csc, r.b_csr) for r in reqs],
                semiring=head.semiring,
                config=head.config,
            )
            compute_s = time.perf_counter() - t0
            phase = {**detail.phase_seconds, "shared": True}
            plan = {
                "algorithm": "pb",
                "source": "fused-wave",
                "executor": detail.executor_used,
            }
            # Wave-level timings are shared; compute_s is the per-
            # request amortized share of the stacked multiply.
            share = compute_s / len(reqs)
            return [("ok", (c, phase, share, plan)) for c in products]
        req = reqs[0]
        try:
            return [("ok", self._run_single(req))]
        except BrokenProcessPool:
            raise
        except Exception as exc:
            return [("error", f"{type(exc).__name__}: {exc}")]

    def _run_single(self, req: ServeRequest):
        session = self.session
        sc = self.serve_config
        t0 = time.perf_counter()
        if (
            sc.shards is not None
            and req.algorithm in ("pb", "tiled", "sharded")
            and req.tuples >= sc.shard_tuples
        ):
            from ..core.sharded import sharded_config, sharded_spgemm_detailed

            cfg = sharded_config(req.config or self.config, sc.shards)
            detail = sharded_spgemm_detailed(
                req.a_csc, req.b_csr, req.semiring, cfg, session=session
            )
            compute_s = time.perf_counter() - t0
            plan = {
                "algorithm": "sharded",
                "source": "shard-routed",
                "shards": detail.plan.shards if detail.plan else 1,
                "fallback": detail.fallback,
            }
            phase = {"merge": detail.merge_seconds}
            return detail.c, phase, compute_s, plan
        if req.algorithm == "pb":
            detail = session.multiply_detailed(
                req.a_csc, req.b_csr, semiring=req.semiring, config=req.config
            )
            compute_s = time.perf_counter() - t0
            plan = {
                "algorithm": "pb",
                "source": "direct",
                "executor": detail.executor_used,
            }
            return detail.c, dict(detail.phase_seconds), compute_s, plan
        if req.algorithm == "auto":
            from ..planner import plan as make_plan

            chosen = make_plan(
                req.a_csc,
                req.b_csr,
                semiring=req.semiring,
                config=req.config,
                warm_pool=session.is_warm(),
            )
            c = session.multiply(
                req.a_csc, req.b_csr, algorithm=chosen, semiring=req.semiring
            )
            compute_s = time.perf_counter() - t0
            plan = {
                "algorithm": chosen.algorithm,
                "source": chosen.source,
                "executor": chosen.executor,
                "nthreads": chosen.nthreads,
                "predicted_seconds": chosen.predicted_seconds,
                "cache_key": chosen.cache_key,
            }
            return c, {}, compute_s, plan
        c = session.multiply(
            req.a_csc,
            req.b_csr,
            algorithm=req.algorithm,
            semiring=req.semiring,
            config=req.config if _supports_config(req.algorithm) else None,
        )
        compute_s = time.perf_counter() - t0
        return c, {}, compute_s, {"algorithm": req.algorithm, "source": "direct"}

    # -- observability -------------------------------------------------------
    def stats(self) -> dict:
        """The ``stats`` op payload: server counters + latency
        quantiles, scheduler gauges, and the shared session's runtime
        counters (engine + arena pool)."""
        return {
            "server": self.metrics.snapshot(),
            "scheduler": self.scheduler.gauges() if self.scheduler else {},
            "session": self.session.runtime_stats() if self.session else {},
        }


def _supports_config(algorithm: str) -> bool:
    return bool(getattr(get_algorithm(algorithm), "supports_config", False))


def _error(rid, code: str, message: str) -> dict:
    return {"id": rid, "ok": False, "error": {"code": code, "message": message}}
