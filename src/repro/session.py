"""repro.session — persistent execution sessions (warm pools + arena
recycling).

``PBConfig(executor="process")`` historically paid a fixed per-multiply
tax the paper's OpenMP threads never see: a fresh ``ProcessPoolExecutor``
spawned and torn down inside every :func:`repro.core.pb_spgemm` call,
plus fresh shared-memory arenas created and unlinked per call — the
calibrated planner even measures that spawn as per-call overhead.  The
workloads this library targets (MCL, AMG, PageRank, matrix powers in
:mod:`repro.apps`) call SpGEMM in a loop, so the tax is paid hundreds of
times per run.

A :class:`Session` amortizes all of it, mirroring the persistent-pool /
buffer-reuse designs of GraphBLAS-style libraries
(SuiteSparse:GraphBLAS, CombBLAS):

* **Warm worker pool** — one
  :class:`~repro.parallel.executor.ProcessEngine`, spawned lazily on the
  first process-executor multiply and reused by every subsequent one;
  grown (never shrunk) when a multiply requests more workers.
* **Arena recycling** — a size-classed
  :class:`~repro.parallel.shm.ArenaPool`: expand/distribute buffers are
  leased and returned instead of created and unlinked, so steady-state
  multiplies touch already-faulted pages and never hit
  ``shm_open``/``ftruncate``.
* **Pipelined bin processing** — with the engine warm, PB's distribute
  and sort phases overlap (``PBConfig.pipeline``): each bin group's
  sort/compress task is submitted the moment its slice of the placement
  lands in shared memory.

Results are bit-identical to ``executor="serial"`` for every semiring —
the session only changes *when* pools and buffers are created, never
what is computed.

Usage::

    import repro

    with repro.Session(repro.PBConfig(executor="process", nthreads=4)) as s:
        c1 = s.multiply(a, a)                  # spawns the pool
        c2 = s.multiply(c1, a)                 # reuses it (warm)
        batch = s.multiply_many([(a, a), (c1, c1)], semiring="min_plus")
    # close() shut the pool down and unlinked every pooled segment

``repro.multiply(a, b, session=s)`` threads an existing session through
the normal front door; ``algorithm="auto"`` inside a warm session prices
process candidates at the measured warm-dispatch latency instead of the
pool-spawn cost (:mod:`repro.planner.calibrate`).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

from .core.config import PBConfig
from .semiring import PLUS_TIMES, Semiring

__all__ = ["Session", "SessionStats"]


@dataclass
class SessionStats:
    """Observable counters of one session's lifetime."""

    multiplies: int = 0
    engine_multiplies: int = 0  # multiplies that ran on the warm engine
    engine_spawns: int = 0  # pool (re)spawns, incl. lazy resizes
    engine_restarts: int = 0  # engines replaced after a worker death
    fused_waves: int = 0  # batches executed as one stacked PB multiply
    fused_requests: int = 0  # individual multiplies served by fused waves
    sharded_multiplies: int = 0  # multiplies run on the sharded executor
    jit_warmup_s: float = 0.0  # one-time JIT compile/load paid at construction
    arena_stats: dict = field(default_factory=dict)  # ArenaPool counters

    def to_dict(self) -> dict:
        return {
            "multiplies": self.multiplies,
            "engine_multiplies": self.engine_multiplies,
            "engine_spawns": self.engine_spawns,
            "engine_restarts": self.engine_restarts,
            "fused_waves": self.fused_waves,
            "fused_requests": self.fused_requests,
            "sharded_multiplies": self.sharded_multiplies,
            "jit_warmup_s": self.jit_warmup_s,
            "arena_stats": dict(self.arena_stats),
        }


def _close_resources(resources: dict) -> None:
    """Finalizer target: tear down whatever the session still holds.

    Runs via ``weakref.finalize`` when a session is garbage-collected
    without ``close()`` (and at interpreter exit otherwise), so pooled
    shared-memory segments are unlinked even on sloppy teardown —
    no ``resource_tracker`` leak warnings.
    """
    engine = resources.get("engine")
    if engine is not None:
        try:
            engine.close()
        except Exception:  # pragma: no cover - interpreter-exit races
            pass
    pool = resources.get("pool")
    if pool is not None:
        try:
            pool.close()
        except Exception:  # pragma: no cover - interpreter-exit races
            pass


class Session:
    """Long-lived execution context for many SpGEMM multiplies.

    Parameters
    ----------
    config:
        Default :class:`~repro.core.config.PBConfig` for this session's
        multiplies (per-call ``config=`` overrides it).  Validated with
        :meth:`PBConfig.validate_session` — e.g. ``executor="process"``
        with ``nthreads=1`` is rejected here instead of silently
        falling back to serial on every call.
    start_method:
        Multiprocessing start method for the warm pool (``"fork"`` /
        ``"spawn"``; ``None`` prefers fork where available).
    warm:
        Spawn and warm the pool immediately instead of on first use —
        moves the one-time spawn cost to construction time.
    max_cached_bytes:
        Cap on bytes the arena pool may keep parked between multiplies
        (``None`` — unbounded; segments over budget are unlinked on
        release instead of recycled).

    A session is also usable with ``executor="serial"`` configs: the
    batch API still works, there is simply no pool to keep warm.
    """

    def __init__(
        self,
        config: PBConfig | None = None,
        *,
        start_method: str | None = None,
        warm: bool = False,
        max_cached_bytes: int | None = None,
    ):
        self.config = (config or PBConfig()).validate_session()
        self._start_method = start_method
        self._closed = False
        self.stats = SessionStats()
        # Spawns of engines that were since replaced after a worker
        # death; engine_for adds the live engine's own count on top.
        self._engine_spawns_base = 0
        pool = None
        from .parallel import process_backend_available

        if process_backend_available():
            from .parallel.shm import ArenaPool

            pool = ArenaPool(max_cached_bytes=max_cached_bytes)
        # The finalizer must not keep ``self`` alive; resources live in
        # a plain dict both the session and the finalizer can see.
        self._resources: dict = {"engine": None, "pool": pool}
        self._finalizer = weakref.finalize(self, _close_resources, self._resources)
        # Warm-up hygiene (DESIGN.md §14): when the session's config
        # selects any *_jit backend, compile/load the JIT tier now — at
        # construction, off the request path — so the first multiply's
        # phase timings never absorb compiler time.  The cost is
        # recorded on stats; pb_spgemm's own idempotent warmup then
        # reads ~0 and reports it under phase_seconds["jit_warmup_s"].
        if self.config.uses_jit:
            from .kernels import jit as _jit

            self.stats.jit_warmup_s = _jit.warmup()
        if warm:
            self.warm_up()

    # -- engine management --------------------------------------------------
    @property
    def _engine(self):
        return self._resources["engine"]

    @property
    def arena_pool(self):
        """The session's :class:`~repro.parallel.shm.ArenaPool` (or
        ``None`` when the platform lacks shared memory)."""
        return self._resources["pool"]

    def engine_for(self, config: PBConfig | None = None):
        """The warm :class:`~repro.parallel.executor.ProcessEngine` for
        one multiply, or ``None`` when the request resolves to serial.

        Spawns the pool on first use, grows it when ``config.nthreads``
        exceeds the current width, and counts the engine-backed multiply
        in :attr:`stats`.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        cfg = config or self.config
        if cfg.executor != "process" or cfg.nthreads < 2:
            return None
        from .parallel import process_backend_available

        if not process_backend_available():  # pragma: no cover - platform
            return None
        engine = self._resources["engine"]
        if engine is None:
            from .parallel.executor import ProcessEngine

            engine = ProcessEngine(
                cfg.nthreads,
                arena_pool=self._resources["pool"],
                start_method=self._start_method,
            )
            self._resources["engine"] = engine
        else:
            engine.ensure_workers(cfg.nthreads)
        self.stats.engine_spawns = self._engine_spawns_base + engine.spawn_count
        return engine

    def _recover_engine(self) -> None:
        """Discard a broken engine so the next multiply respawns fresh.

        Called when a worker died mid-multiply (``BrokenProcessPool``).
        Closing the engine releases its arenas back to the session's
        pool — the parent owns every segment, so nothing leaks in
        ``/dev/shm`` even though workers vanished — and the next
        :meth:`engine_for` builds a replacement pool.
        """
        engine = self._resources["engine"]
        if engine is None:
            return
        self._engine_spawns_base += engine.spawn_count
        try:
            engine.close()
        except Exception:  # pragma: no cover - teardown of a broken pool
            pass
        self._resources["engine"] = None
        self.stats.engine_restarts += 1

    def is_warm(self) -> bool:
        """True when the pool has been spawned and is still running."""
        engine = self._resources["engine"]
        return engine is not None and not engine._closed

    def warm_up(self) -> "Session":
        """Spawn the pool now (if the config wants one) and block until
        a worker answers; returns ``self`` for chaining."""
        engine = self.engine_for(self.config)
        if engine is not None:
            engine.warm_up()
        return self

    # -- multiplication -----------------------------------------------------
    def multiply(
        self,
        a,
        b,
        algorithm="pb",
        semiring: Semiring | str = PLUS_TIMES,
        config: PBConfig | None = None,
        **kwargs,
    ):
        """C = A · B through :func:`repro.multiply`, on this session.

        Identical signature and semantics to the front door; the
        session supplies the warm engine (for session-capable
        algorithms under ``executor="process"``) and warm-vs-cold
        pricing to ``algorithm="auto"``.

        Worker-death robustness: if a pool worker dies mid-multiply
        (``BrokenProcessPool``), the session discards the broken engine
        and retries once on a fresh pool; a second death propagates the
        exception (and the replacement pool still serves later calls).
        """
        from concurrent.futures.process import BrokenProcessPool

        from .api import multiply as _multiply

        self.stats.multiplies += 1
        for attempt in (0, 1):
            try:
                return _multiply(
                    a,
                    b,
                    algorithm=algorithm,
                    semiring=semiring,
                    config=config or self.config,
                    session=self,
                    **kwargs,
                )
            except BrokenProcessPool:
                self._recover_engine()
                if attempt:
                    raise

    def multiply_detailed(
        self,
        a,
        b,
        semiring: Semiring | str = PLUS_TIMES,
        config: PBConfig | None = None,
    ):
        """One PB multiply with full instrumentation, on this session.

        Returns the :class:`~repro.core.pb_spgemm.PBResult` (product at
        ``.c`` plus ``phase_seconds`` etc.) — the per-request
        observability a multiply server reports.  Same worker-death
        retry contract as :meth:`multiply`.
        """
        from concurrent.futures.process import BrokenProcessPool

        from .api import _coerce
        from .core.pb_spgemm import pb_spgemm_detailed

        cfg = config or self.config
        a_csc = _coerce(a, "A", "csc")
        b_csr = _coerce(b, "B", "csr")
        self.stats.multiplies += 1
        for attempt in (0, 1):
            try:
                engine = self.engine_for(cfg)
                if engine is not None and attempt == 0:
                    self._note_engine_multiply()
                return pb_spgemm_detailed(
                    a_csc, b_csr, semiring=semiring, config=cfg, engine=engine
                )
            except BrokenProcessPool:
                self._recover_engine()
                if attempt:
                    raise

    def multiply_many(self, pairs, fused: bool | str = "auto", **kwargs) -> list:
        """Multiply a batch of ``(a, b)`` operand pairs on this session.

        With ``fused="auto"`` (default), a batch of two or more plain
        PB multiplies sharing one semiring/config is executed as a
        *single* block-diagonally stacked PB run
        (:mod:`repro.core.batched`) — one symbolic/expand/distribute/
        sort pipeline amortized over the whole wave, bit-identical per
        pair to the standalone products.  ``fused=False`` forces the
        loop of individual multiplies; ``fused=True`` requires the
        fused path (raises if the kwargs are not fusable).  Any other
        keyword arguments are forwarded to every :meth:`multiply`.
        Returns the products in order.
        """
        pairs = list(pairs)
        fusable = len(pairs) >= 2 and set(kwargs) <= {"semiring", "config"}
        if fused is True and not fusable:
            raise ValueError(
                "fused=True needs >= 2 pairs and only semiring=/config= kwargs"
            )
        if fused and fusable:
            results, _detail = self.multiply_many_detailed(pairs, **kwargs)
            return results
        return [self.multiply(a, b, **kwargs) for a, b in pairs]

    def multiply_many_detailed(
        self,
        pairs,
        semiring: Semiring | str = PLUS_TIMES,
        config: PBConfig | None = None,
    ):
        """Fused wave with instrumentation: ``(products, wave_detail)``.

        Executes the batch as one stacked PB multiply and returns the
        per-pair products plus the wave's
        :class:`~repro.core.pb_spgemm.PBResult` (phase timings are
        wave-level — shared by every pair).  Same worker-death retry
        contract as :meth:`multiply`: the wave is re-run once on a
        fresh pool before the failure propagates.
        """
        from concurrent.futures.process import BrokenProcessPool

        from .api import _coerce
        from .core.batched import fused_multiply_detailed

        cfg = config or self.config
        coerced = [
            (_coerce(a, "A", "csc"), _coerce(b, "B", "csr")) for a, b in pairs
        ]
        self.stats.multiplies += len(coerced)
        self.stats.fused_waves += 1
        self.stats.fused_requests += len(coerced)
        for attempt in (0, 1):
            try:
                engine = self.engine_for(cfg)
                if engine is not None and attempt == 0:
                    self._note_engine_multiply()
                return fused_multiply_detailed(
                    coerced, semiring=semiring, config=cfg, engine=engine
                )
            except BrokenProcessPool:
                self._recover_engine()
                if attempt:
                    raise

    def _note_engine_multiply(self) -> None:
        self.stats.engine_multiplies += 1

    def _note_sharded_multiply(self) -> None:
        self.stats.sharded_multiplies += 1

    def runtime_stats(self) -> dict:
        """Live observability snapshot: session counters plus the
        engine's and arena pool's own ``stats()`` (``None`` when the
        respective resource does not exist yet).  Cheap — counters and
        gauges only, no syscalls beyond ``Process.is_alive`` checks."""
        snap = self.stats.to_dict()
        engine = self._resources["engine"]
        pool = self._resources["pool"]
        snap["engine"] = engine.stats() if engine is not None else None
        snap["arena_pool"] = pool.stats() if pool is not None else None
        return snap

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink every pooled segment
        (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _close_resources(self._resources)
        pool = self._resources["pool"]
        if pool is not None:
            self.stats.arena_stats = pool.stats()
        self._resources["engine"] = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("warm" if self.is_warm() else "cold")
        return (
            f"Session({state}, executor={self.config.executor!r}, "
            f"nthreads={self.config.nthreads}, multiplies={self.stats.multiplies})"
        )
