"""Simulated parallel execution — virtual threads on the machine models.

The engine (:mod:`engine`) times the cost-model phases under a thread
count, socket placement and NUMA traffic mix, reproducing the paper's
performance figures; :mod:`threads` provides the schedule/makespan
calculations, and :mod:`trace` generates small address traces for the
cache simulator to cross-check the analytic byte counts.
"""

from .threads import static_block_makespan, lpt_makespan, partition_static_block
from .engine import PhaseReport, SimReport, simulate_spgemm, simulate_phases, simulate_partitioned_pb
from .trace import (
    trace_stream_read,
    trace_column_a_reads,
    trace_bin_writes,
    trace_bin_writes_local,
)

__all__ = [
    "static_block_makespan",
    "lpt_makespan",
    "partition_static_block",
    "PhaseReport",
    "SimReport",
    "simulate_spgemm",
    "simulate_phases",
    "simulate_partitioned_pb",
    "trace_stream_read",
    "trace_column_a_reads",
    "trace_bin_writes",
    "trace_bin_writes_local",
]
