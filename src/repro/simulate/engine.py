"""The simulation engine: phase costs × machine model → time and FLOPS.

For each :class:`~repro.costmodel.phases.PhaseCost` the engine computes

* ``t_stream`` — streamed DRAM traffic over the NUMA-adjusted STREAM
  bandwidth of the thread configuration,
* ``t_random`` — irregular line fetches, the slower of the
  latency-bound rate (``mlp`` outstanding misses per core) and the
  line-traffic rate at the copy ceiling,
* ``t_compute`` — cycles over aggregate scalar throughput,

combines them per the phase's ``overlap`` mode (``max`` for pipelined
streamed phases, ``add`` when dependent irregular loads serialize with
compute), and bounds each term from below by its *straggler* time — the
largest schedulable work item processed at single-thread rates (how
R-MAT hub outer products cap scaling).  Phase times sum to the
algorithm's runtime; FLOPS and sustained GB/s follow.  This is the
function that draws Figs. 7-14.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import PBConfig
from ..costmodel.bytes_model import algorithm_phase_costs
from ..costmodel.phases import PhaseCost, WorkloadStats, workload_stats
from ..errors import SimulationError
from ..machine.numa import numa_mix_bandwidth, numa_mix_latency, remote_fraction_round_robin
from ..machine.spec import MachineSpec
from ..machine.stream import GB, stream_bandwidth
from .threads import imbalance_factor

#: Phases whose traffic crosses sockets when bins are produced on one
#: socket and consumed on another (paper Sec. V-D).
_NUMA_SENSITIVE_PHASES = {"expand", "sort", "compress"}

#: The sort phase additionally reads remote bins while the other socket
#: does the same in the opposite direction — bidirectional UPI load.
_NUMA_BIDIRECTIONAL_PHASES = {"sort"}


@dataclass(frozen=True)
class PhaseReport:
    """Timing of one phase."""

    name: str
    seconds: float
    dram_bytes: float
    sustained_gbs: float
    bottleneck: str  # "bandwidth" | "latency" | "compute"
    imbalance: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name:>10}: {self.seconds * 1e3:8.3f} ms  "
            f"{self.sustained_gbs:6.1f} GB/s  [{self.bottleneck}]"
        )


@dataclass(frozen=True)
class SimReport:
    """Full simulation result for one algorithm on one workload."""

    algorithm: str
    machine: str
    nthreads: int
    sockets: int
    flop: int
    nnz_c: int
    compression_factor: float
    phases: tuple[PhaseReport, ...]
    total_seconds: float
    mflops: float
    sustained_gbs: float

    def phase(self, name: str) -> PhaseReport:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"no phase {name!r} in report ({[p.name for p in self.phases]})")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        head = (
            f"{self.algorithm} on {self.machine} × {self.nthreads} threads: "
            f"{self.total_seconds * 1e3:.3f} ms, {self.mflops:.0f} MFLOPS, "
            f"{self.sustained_gbs:.1f} GB/s"
        )
        return "\n".join([head] + [f"  {p}" for p in self.phases])


def _streamed_gbs(
    machine: MachineSpec,
    nthreads: int,
    sockets: int,
    kernel: str,
    remote_fraction: float,
    bidirectional: bool = False,
) -> float:
    base = stream_bandwidth(machine, kernel, sockets, nthreads)
    if remote_fraction <= 0.0 or machine.numa.nsockets < 2:
        return base
    mixed = numa_mix_bandwidth(machine, remote_fraction, bidirectional=bidirectional)
    return base * min(1.0, mixed / machine.numa.local_bandwidth())


def _time_phase(
    phase: PhaseCost,
    machine: MachineSpec,
    nthreads: int,
    sockets: int,
    remote_fraction: float,
) -> PhaseReport:
    rf = remote_fraction if phase.name in _NUMA_SENSITIVE_PHASES or sockets > 1 else 0.0

    # Load balance: the share of the phase's work the busiest thread
    # owns under the phase's schedule (1/t when perfectly balanced).
    # A straggler processes its share at *single-thread* rates while the
    # rest of the machine idles — the correct wall-clock bound, unlike
    # scaling saturated-bus time by an imbalance factor (which would
    # make added threads look slower).
    balance = imbalance_factor(phase.work_items, nthreads, phase.schedule)
    straggler_share = balance / nthreads

    # Streamed traffic: bus-limited aggregate vs the straggler's share
    # at one core's bandwidth.
    bidir = rf > 0.0 and phase.name in _NUMA_BIDIRECTIONAL_PHASES
    stream_gbs = _streamed_gbs(
        machine, nthreads, sockets, phase.stream_kernel, rf, bidirectional=bidir
    )
    single_gbs = _streamed_gbs(
        machine, 1, sockets, phase.stream_kernel, rf, bidirectional=bidir
    )
    streamed_bytes = phase.dram_read_bytes + phase.dram_write_bytes
    t_stream = 0.0
    if streamed_bytes:
        t_stream = max(
            streamed_bytes / (stream_gbs * GB),
            straggler_share * streamed_bytes / (single_gbs * GB),
        )

    # Irregular traffic: latency-bound vs line-traffic-bound.
    t_random = 0.0
    if phase.random_line_touches:
        latency_ns = numa_mix_latency(machine, rf) if rf else machine.dram_latency_ns
        t_latency = (
            phase.random_line_touches * latency_ns * 1e-9 / (machine.mlp * nthreads)
        )
        t_latency = max(
            t_latency,
            straggler_share
            * phase.random_line_touches
            * latency_ns
            * 1e-9
            / machine.mlp,
        )
        line_bytes = phase.random_line_touches * machine.line_bytes
        copy_gbs = _streamed_gbs(machine, nthreads, sockets, "copy", rf)
        t_lines = line_bytes / (copy_gbs * GB)
        t_random = max(t_latency, t_lines)

    # Compute: aggregate throughput vs the straggler's serial share.
    t_compute = 0.0
    if phase.compute_cycles:
        clock = machine.clock_ghz * 1e9
        t_compute = max(
            phase.compute_cycles / (nthreads * clock),
            straggler_share * phase.compute_cycles / clock,
        )

    if phase.overlap == "max":
        t = max(t_stream + t_random, t_compute)
        if t == 0.0:
            bottleneck = "bandwidth"
        elif t_compute >= t_stream + t_random:
            bottleneck = "compute"
        elif t_random > t_stream:
            bottleneck = "latency"
        else:
            bottleneck = "bandwidth"
    elif phase.overlap == "add":
        t = t_stream + t_random + t_compute
        parts = {"bandwidth": t_stream, "latency": t_random, "compute": t_compute}
        bottleneck = max(parts, key=parts.get)
    else:
        raise SimulationError(f"unknown overlap mode {phase.overlap!r}")

    dram = phase.total_dram_bytes(machine.line_bytes)
    sustained = dram / (t * GB) if t > 0 else 0.0
    return PhaseReport(
        name=phase.name,
        seconds=t,
        dram_bytes=dram,
        sustained_gbs=sustained,
        bottleneck=bottleneck,
        imbalance=balance,
    )


def simulate_phases(
    phases: list[PhaseCost],
    machine: MachineSpec,
    nthreads: int,
    sockets: int = 1,
    remote_fraction: float | None = None,
) -> list[PhaseReport]:
    """Time a list of phases on a machine configuration."""
    if not 1 <= sockets <= machine.sockets:
        raise SimulationError(
            f"{machine.name} has {machine.sockets} sockets, asked for {sockets}"
        )
    max_threads = sockets * machine.cores_per_socket
    if not 1 <= nthreads <= max_threads:
        raise SimulationError(
            f"nthreads {nthreads} outside [1, {max_threads}] for "
            f"{sockets} socket(s) of {machine.name}"
        )
    if remote_fraction is None:
        remote_fraction = remote_fraction_round_robin(sockets) if sockets > 1 else 0.0
    return [
        _time_phase(p, machine, nthreads, sockets, remote_fraction) for p in phases
    ]


def simulate_partitioned_pb(
    stats: WorkloadStats,
    machine: MachineSpec,
    npartitions: int | None = None,
    config: PBConfig | None = None,
) -> SimReport:
    """Simulate the partitioned PB-SpGEMM of paper Sec. V-D.

    A is split into one row block per socket; each socket runs an
    independent single-socket PB-SpGEMM of its block against the whole
    of B.  All traffic stays NUMA-local; the price is that every socket
    reads B in full (the "additional cost of reading B more than once").
    The partitions run concurrently, so wall time is the slowest
    partition — approximated as the 1/npartitions-scaled workload plus
    the repeated B read.
    """
    nparts = npartitions if npartitions is not None else machine.sockets
    if nparts < 1:
        raise SimulationError(f"npartitions must be >= 1, got {nparts}")
    nparts = min(nparts, machine.sockets)
    share = 1.0 / nparts

    part_stats = WorkloadStats(
        n_rows=max(1, stats.n_rows // nparts),
        n_cols=stats.n_cols,
        k=stats.k,
        nnz_a=int(stats.nnz_a * share),
        nnz_b=stats.nnz_b,  # B is read in full by every partition
        nnz_c=max(1, int(stats.nnz_c * share)),
        flop=max(1, int(stats.flop * share)),
        mean_col_degree_a=stats.mean_col_degree_a * share,
        flops_per_k=np.maximum(stats.flops_per_k // nparts, 0),
        flops_per_row=stats.flops_per_row[: max(1, stats.n_rows // nparts)],
        flops_per_col=np.maximum(stats.flops_per_col // nparts, 0),
        nnz_b_per_col=stats.nnz_b_per_col,
    )
    rep = simulate_spgemm(
        stats=part_stats,
        algorithm="pb",
        machine=machine,
        nthreads=machine.cores_per_socket,
        sockets=1,
        config=config,
        remote_fraction=0.0,
    )
    return SimReport(
        algorithm=f"pb_partitioned_{nparts}",
        machine=machine.name,
        nthreads=nparts * machine.cores_per_socket,
        sockets=nparts,
        flop=stats.flop,
        nnz_c=stats.nnz_c,
        compression_factor=stats.compression_factor,
        phases=rep.phases,
        total_seconds=rep.total_seconds,
        mflops=stats.flop / rep.total_seconds / 1e6 if rep.total_seconds else 0.0,
        sustained_gbs=rep.sustained_gbs * nparts,
    )


def simulate_spgemm(
    a_csc=None,
    b_csr=None,
    *,
    stats: WorkloadStats | None = None,
    algorithm: str = "pb",
    machine: MachineSpec,
    nthreads: int | None = None,
    sockets: int = 1,
    config: PBConfig | None = None,
    remote_fraction: float | None = None,
) -> SimReport:
    """Simulate one SpGEMM on a machine model.

    Provide either the operand matrices (stats are derived) or a
    precomputed :class:`WorkloadStats` (cheaper when sweeping
    algorithms/threads over the same workload).

    ``nthreads`` defaults to all cores of the selected sockets — the
    paper's saturated configuration.
    """
    if stats is None:
        if a_csc is None or b_csr is None:
            raise SimulationError("need either matrices or precomputed stats")
        stats = workload_stats(a_csc, b_csr)
    if nthreads is None:
        nthreads = sockets * machine.cores_per_socket

    phases = algorithm_phase_costs(algorithm, stats, machine, config)
    reports = simulate_phases(phases, machine, nthreads, sockets, remote_fraction)
    total = sum(p.seconds for p in reports)
    dram = sum(p.dram_bytes for p in reports)
    return SimReport(
        algorithm=algorithm,
        machine=machine.name,
        nthreads=nthreads,
        sockets=sockets,
        flop=stats.flop,
        nnz_c=stats.nnz_c,
        compression_factor=stats.compression_factor,
        phases=tuple(reports),
        total_seconds=total,
        mflops=stats.flop / total / 1e6 if total > 0 else 0.0,
        sustained_gbs=dram / total / GB if total > 0 else 0.0,
    )
