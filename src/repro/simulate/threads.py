"""Virtual-thread scheduling: makespan of a work-item distribution.

Two schedules appear in the paper:

* the **expand** loop is a static ``parallel for`` over columns of A —
  contiguous equal-count chunks, so hub columns (R-MAT) land together
  and skew the chunk sums;
* **sort/compress** distribute whole bins to threads — modelled as
  longest-processing-time (LPT) list scheduling, the behaviour of an
  OpenMP dynamic schedule over bins.

Makespans are returned as a *load-imbalance factor*: makespan divided
by the perfectly balanced share (total / nthreads), ≥ 1.  The engine
multiplies phase times by this factor, which is what turns R-MAT skew
into the 30-40 GB/s sustained bandwidth of Fig. 9b and the 10× (vs 16×)
scaling of Fig. 12.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError


def partition_static_block(n_items: int, nthreads: int) -> np.ndarray:
    """Chunk boundaries of an OpenMP static schedule (length nthreads+1)."""
    if nthreads < 1:
        raise SimulationError(f"nthreads must be >= 1, got {nthreads}")
    return np.linspace(0, n_items, nthreads + 1).astype(np.int64)


def static_block_makespan(work: np.ndarray, nthreads: int) -> float:
    """Max chunk sum under contiguous equal-count chunking."""
    work = np.asarray(work, dtype=np.float64)
    if nthreads < 1:
        raise SimulationError(f"nthreads must be >= 1, got {nthreads}")
    if len(work) == 0:
        return 0.0
    bounds = partition_static_block(len(work), nthreads)
    prefix = np.concatenate([[0.0], np.cumsum(work)])
    chunk_sums = prefix[bounds[1:]] - prefix[bounds[:-1]]
    return float(chunk_sums.max())


def lpt_makespan(work: np.ndarray, nthreads: int) -> float:
    """Makespan of longest-processing-time list scheduling.

    Exact greedy LPT (sort descending, place on least-loaded thread);
    O(n log n + n log t).  For n ≤ t it degenerates to max(work).
    """
    work = np.asarray(work, dtype=np.float64)
    if nthreads < 1:
        raise SimulationError(f"nthreads must be >= 1, got {nthreads}")
    work = work[work > 0]
    if len(work) == 0:
        return 0.0
    if nthreads == 1:
        return float(work.sum())
    if len(work) <= nthreads:
        return float(work.max())
    import heapq

    loads = [0.0] * nthreads
    heapq.heapify(loads)
    for w in -np.sort(-work):
        heapq.heappush(loads, heapq.heappop(loads) + float(w))
    return float(max(loads))


def imbalance_factor(
    work: np.ndarray | None, nthreads: int, schedule: str = "lpt"
) -> float:
    """Makespan / balanced-share ratio (≥ 1); 1.0 when work is unknown."""
    if work is None or nthreads <= 1:
        return 1.0
    work = np.asarray(work, dtype=np.float64)
    total = float(work.sum())
    if total <= 0:
        return 1.0
    if schedule == "static_block":
        makespan = static_block_makespan(work, nthreads)
    elif schedule == "lpt":
        makespan = lpt_makespan(work, nthreads)
    else:
        raise SimulationError(f"unknown schedule {schedule!r}")
    return max(1.0, makespan / (total / nthreads))
