"""Address-trace generators for the cache simulator (model validation).

These produce byte-address streams for the access patterns the analytic
model reasons about, in a flat synthetic address space:

* streamed reads of a CSC/CSR operand,
* the column algorithm's irregular A-column bursts driven by B,
* PB's global-bin tuple writes, with and without local bins.

Feeding them through :class:`repro.machine.hierarchy.MemoryHierarchy`
lets tests confirm the analytic line counts (Table II's streaming and
utilization claims) on small concrete matrices.
"""

from __future__ import annotations

import numpy as np

from ..core.binning import BinLayout
from ..core.config import TUPLE_BYTES
from ..matrix.csc import CSCMatrix
from ..matrix.csr import CSRMatrix

#: Region spacing in the synthetic address space — large enough that
#: regions never share cache lines.
_REGION = 1 << 34
ENTRY_BYTES = 12


def region_base(index: int) -> int:
    """Base byte address of synthetic region ``index``."""
    return index * _REGION


def trace_stream_read(nnz: int, entry_bytes: int = ENTRY_BYTES, base: int = 0) -> np.ndarray:
    """Sequential read of ``nnz`` entries — the outer product's A/B scan."""
    return base + np.arange(nnz, dtype=np.int64) * entry_bytes


def trace_column_a_reads(
    a_csc: CSCMatrix,
    b_csr: CSRMatrix,
    base: int = 0,
) -> np.ndarray:
    """Column-algorithm reads of A: for every B nonzero (in row-major
    output order), the burst of A(:, k) entry addresses.

    The burst ordering is what makes these *random*: consecutive bursts
    target unrelated columns of A.
    """
    b_csc = b_csr.to_csc()
    ks = b_csc.indices  # selected A columns, output-column order
    ptr = a_csc.indptr
    lens = (ptr[ks + 1] - ptr[ks]).astype(np.int64)
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    group = np.repeat(np.arange(len(ks)), lens)
    starts = np.zeros(len(ks), dtype=np.int64)
    np.cumsum(lens[:-1], out=starts[1:])
    within = np.arange(total, dtype=np.int64) - starts[group]
    entry_idx = ptr[ks[group]] + within
    return base + entry_idx * ENTRY_BYTES


def trace_bin_writes(
    layout: BinLayout,
    rows_stream: np.ndarray,
    base: int = 0,
) -> np.ndarray:
    """Global-bin append addresses *without* local bins.

    Each tuple goes straight to the current tail of its bin — writes
    ping-pong between nbins open cache lines, so with many bins the
    lines evict before filling (the waste local bins remove).
    Bins are laid out contiguously, each sized for the worst case.
    """
    rows_stream = np.asarray(rows_stream)
    binid = layout.bin_of_rows(rows_stream)
    # Tail offset of each tuple within its bin = running per-bin count.
    order = np.argsort(binid, kind="stable")
    inv = np.empty_like(order)
    inv[order] = np.arange(len(order))
    counts = np.bincount(binid, minlength=layout.nbins)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    offset_within_bin = inv - starts[binid]
    bin_capacity = int(len(rows_stream)) + 1
    addr = (binid * bin_capacity + offset_within_bin) * TUPLE_BYTES
    return base + addr


def trace_bin_writes_local(
    layout: BinLayout,
    rows_stream: np.ndarray,
    local_bin_tuples: int,
    base: int = 0,
) -> np.ndarray:
    """Global-bin writes *with* local bins: tuples first accumulate in a
    small per-bin buffer (cache-resident, not traced as DRAM traffic)
    and hit the global bin only at flush time, as a contiguous burst.

    The returned trace contains the same global-bin addresses as
    :func:`trace_bin_writes` but reordered into flush bursts — which is
    exactly why they use full cache lines.
    """
    plain = trace_bin_writes(layout, rows_stream, base=0)
    binid = layout.bin_of_rows(np.asarray(rows_stream))
    # Flush order: group tuples by (bin, flush round) preserving
    # in-bin order; rounds interleave in arrival order of completion.
    order = np.argsort(binid, kind="stable")
    sorted_addr = plain[order]
    counts = np.bincount(binid, minlength=layout.nbins)
    bursts: list[np.ndarray] = []
    pos = 0
    for b in range(layout.nbins):
        c = int(counts[b])
        seg = sorted_addr[pos : pos + c]
        for i in range(0, c, local_bin_tuples):
            bursts.append(seg[i : i + local_bin_tuples])
        pos += c
    if not bursts:
        return np.empty(0, dtype=np.int64)
    return base + np.concatenate(bursts)
