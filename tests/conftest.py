"""Shared fixtures for the test suite (helpers live in tests/util.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import erdos_renyi, rmat
from tests.util import random_coo


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_pair():
    """A compatible (A CSC, B CSR) pair with moderate density."""
    a = erdos_renyi(200, edge_factor=6, seed=7)
    b = erdos_renyi(200, edge_factor=6, seed=8)
    return a.to_csc(), b


@pytest.fixture
def rect_pair():
    """Rectangular operands exercising m != k != n."""
    from repro.generators import bipartite_blocks

    a, b = bipartite_blocks(60, 45, 80, density=0.08, seed=3)
    return a.to_csc(), b


@pytest.fixture
def skewed_pair():
    """R-MAT operands with heavy-tailed degrees."""
    a = rmat(9, edge_factor=6, seed=17)
    b = rmat(9, edge_factor=6, seed=18)
    return a.to_csc(), b
