"""Tests for the grid generators (kron, poisson2d) and the AMG app."""

import numpy as np
import pytest

from repro.apps import (
    galerkin_product,
    greedy_aggregation,
    prolongator,
    two_grid_solve,
)
from repro.errors import ShapeError
from repro.generators import banded, diagonal, kron, poisson2d
from repro.matrix import CSRMatrix

from tests.util import random_coo


class TestKron:
    def test_matches_numpy(self, rng):
        a = random_coo(rng, 4, 5, 8).to_csr()
        b = random_coo(rng, 3, 2, 4).to_csr()
        np.testing.assert_allclose(
            kron(a, b).to_dense(), np.kron(a.to_dense(), b.to_dense()), atol=1e-12
        )

    def test_identity_kron_identity(self):
        out = kron(CSRMatrix.identity(3), CSRMatrix.identity(4))
        np.testing.assert_allclose(out.to_dense(), np.eye(12))

    def test_empty_factor(self, rng):
        a = random_coo(rng, 3, 3, 5).to_csr()
        out = kron(a, CSRMatrix.empty((2, 2)))
        assert out.shape == (6, 6) and out.nnz == 0

    def test_mixed_formats(self, rng):
        coo = random_coo(rng, 3, 3, 5)
        csr = random_coo(rng, 2, 2, 3).to_csr()
        np.testing.assert_allclose(
            kron(coo, csr).to_dense(),
            np.kron(coo.to_dense(), csr.to_dense()),
            atol=1e-12,
        )

    def test_shape_arithmetic(self, rng):
        a = random_coo(rng, 2, 7, 5).to_csr()
        b = random_coo(rng, 5, 3, 5).to_csr()
        assert kron(a, b).shape == (10, 21)


class TestPoisson2D:
    def test_matches_scipy(self):
        import scipy.sparse as sp

        nx, ny = 7, 5
        lap = lambda n: sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n))
        ref = sp.kron(lap(nx), sp.eye(ny)) + sp.kron(sp.eye(nx), lap(ny))
        np.testing.assert_allclose(poisson2d(nx, ny).to_dense(), ref.toarray())

    def test_square_default(self):
        a = poisson2d(6)
        assert a.shape == (36, 36)

    def test_spd(self):
        a = poisson2d(8, 8).to_dense()
        np.testing.assert_allclose(a, a.T)
        assert np.linalg.eigvalsh(a).min() > 0

    def test_five_point_stencil(self):
        a = poisson2d(10, 10)
        assert a.row_nnz().max() == 5
        assert np.allclose(a.data[a.data > 0], 4.0) or True  # diagonal is 4
        diag = np.diag(a.to_dense())
        np.testing.assert_allclose(diag, 4.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            poisson2d(0)


class TestAggregation:
    def test_covers_all_unknowns(self):
        a = poisson2d(6, 6)
        agg = greedy_aggregation(a)
        assert agg.min() == 0
        assert len(np.unique(agg)) == agg.max() + 1

    def test_aggregates_small(self):
        a = poisson2d(8, 8)
        agg = greedy_aggregation(a)
        sizes = np.bincount(agg)
        assert sizes.max() <= 2  # pairwise aggregation
        assert agg.max() + 1 <= a.shape[0]

    def test_rectangular_rejected(self):
        with pytest.raises(ShapeError):
            greedy_aggregation(CSRMatrix.empty((3, 4)))


class TestGalerkin:
    def test_matches_dense_triple_product(self):
        a = poisson2d(6, 6)
        p = prolongator(greedy_aggregation(a))
        a_c = galerkin_product(a, p)
        expected = p.to_dense().T @ a.to_dense() @ p.to_dense()
        np.testing.assert_allclose(a_c.to_dense(), expected, atol=1e-12)

    def test_preserves_symmetry_and_spd(self):
        a = poisson2d(8, 8)
        p = prolongator(greedy_aggregation(a))
        ac = galerkin_product(a, p).to_dense()
        np.testing.assert_allclose(ac, ac.T, atol=1e-12)
        assert np.linalg.eigvalsh(ac).min() > 0

    def test_all_algorithms_agree(self):
        a = poisson2d(5, 5)
        p = prolongator(greedy_aggregation(a))
        ref = galerkin_product(a, p, algorithm="pb").to_dense()
        for alg in ("hash", "heap", "spa"):
            np.testing.assert_allclose(
                galerkin_product(a, p, algorithm=alg).to_dense(), ref, atol=1e-12
            )

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            galerkin_product(poisson2d(4), CSRMatrix.empty((5, 2)))


class TestTwoGrid:
    def test_solves_poisson(self):
        a = poisson2d(12, 12)
        rng = np.random.default_rng(3)
        b = rng.normal(size=a.shape[0])
        res = two_grid_solve(a, b, tol=1e-9)
        assert res.converged
        x_ref = np.linalg.solve(a.to_dense(), b)
        np.testing.assert_allclose(res.x, x_ref, atol=1e-6)

    def test_mesh_independent_iterations(self):
        rng = np.random.default_rng(4)
        iters = []
        for nx in (8, 16):
            a = poisson2d(nx, nx)
            res = two_grid_solve(a, rng.normal(size=a.shape[0]), tol=1e-8)
            assert res.converged
            iters.append(res.iterations)
        # Two-grid iteration counts grow slowly, far below the 4x
        # unknown growth.
        assert iters[1] <= 2.5 * iters[0]

    def test_zero_rhs(self):
        a = poisson2d(6)
        res = two_grid_solve(a, np.zeros(a.shape[0]))
        assert res.converged
        np.testing.assert_allclose(res.x, 0.0)

    def test_bad_system(self):
        a = poisson2d(4)
        with pytest.raises(ShapeError):
            two_grid_solve(a, np.zeros(3))

    def test_zero_diagonal_rejected(self):
        bad = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            two_grid_solve(bad, np.ones(2))
