"""Tests for the analysis layer: records, rendering, experiment drivers."""

import numpy as np
import pytest

from repro.analysis import (
    ResultTable,
    fig3_roofline,
    fig6_parameter_sweep,
    fig7_to_10_random_matrices,
    fig11_real_matrices,
    fig12_strong_scaling,
    fig13_phase_breakdown,
    fig14_dual_socket,
    render_series,
    render_table,
    table2_access_patterns,
    table3_phase_costs,
    table5_stream,
    table6_matrix_stats,
    table7_numa,
)
from repro.machine import skylake_sp, power9


class TestRecords:
    def test_add_and_columns(self):
        t = ResultTable("t", ["a"])
        t.add(a=1, b=2)
        assert t.columns == ["a", "b"]
        assert t.column("b") == [2]
        assert len(t) == 1

    def test_filtered(self):
        t = ResultTable("t", ["x", "y"])
        t.add(x=1, y="p")
        t.add(x=2, y="q")
        f = t.filtered(y="q")
        assert len(f) == 1 and f.rows[0]["x"] == 2

    def test_csv(self, tmp_path):
        t = ResultTable("t", ["x", "y"])
        t.add(x=1, y=2.5)
        path = tmp_path / "t.csv"
        t.to_csv(path)
        content = path.read_text()
        assert "x,y" in content and "1,2.5" in content

    def test_render_table(self):
        t = ResultTable("demo", ["name", "val"])
        t.add(name="abc", val=1234.5)
        t.note("a note")
        out = render_table(t)
        assert "demo" in out and "abc" in out and "1,234" in out and "a note" in out

    def test_render_series(self):
        t = ResultTable("s", ["x", "y", "alg"])
        t.add(x=1, y=10.0, alg="pb")
        t.add(x=2, y=20.0, alg="pb")
        t.add(x=1, y=5.0, alg="hash")
        out = render_series(t, "x", "y", "alg")
        assert "pb" in out and "#" in out

    def test_render_series_empty(self):
        t = ResultTable("s", ["x", "y", "alg"])
        assert "no data" in render_series(t, "x", "y", "alg")


class TestDrivers:
    def test_fig3(self):
        t = fig3_roofline()
        assert len(t) == 4
        row = t.rows[0]
        assert row["AI_esc"] < row["AI_column"] < row["AI_upper"]

    def test_fig6(self):
        widths, bins = fig6_parameter_sweep(scale=10)
        bw = widths.column("expand_gbs")
        # Rises from tiny bins toward the 512-1024 B plateau.
        assert bw[0] < bw[4] <= max(bw)
        assert len(bins) >= 4

    def test_fig7_shape(self):
        t = fig7_to_10_random_matrices(
            skylake_sp(), "er", scales=(10,), edge_factors=(4,)
        )
        algs = set(t.column("algorithm"))
        assert algs == {"pb", "heap", "hash", "hashvec"}
        pb = t.filtered(algorithm="pb").rows[0]["mflops"]
        for alg in ("heap", "hash", "hashvec"):
            assert pb > t.filtered(algorithm=alg).rows[0]["mflops"]

    def test_fig8_power9_runs(self):
        t = fig7_to_10_random_matrices(
            power9(), "er", scales=(10,), edge_factors=(8,)
        )
        assert len(t) == 4

    def test_fig9_rmat(self):
        t = fig7_to_10_random_matrices(
            skylake_sp(), "rmat", scales=(11,), edge_factors=(8,)
        )
        pb_rows = t.filtered(algorithm="pb")
        assert all(r["pb_gbs"] is not None for r in pb_rows)

    def test_fig11_sorted_by_cf(self):
        t = fig11_real_matrices(
            names=("m133_b3", "cant"), scale_factor=1 / 64
        )
        cfs = t.filtered(algorithm="pb").column("cf")
        assert cfs == sorted(cfs)
        # PB wins the cf~1 matrix; hash wins the high-cf one.
        low = t.filtered(matrix="m133_b3")
        high = t.filtered(matrix="cant")
        low_pb = low.filtered(algorithm="pb").rows[0]["mflops"]
        low_hash = low.filtered(algorithm="hash").rows[0]["mflops"]
        high_pb = high.filtered(algorithm="pb").rows[0]["mflops"]
        high_hash = high.filtered(algorithm="hash").rows[0]["mflops"]
        assert low_pb > low_hash
        assert high_hash > high_pb

    def test_fig12_speedup_increases(self):
        t = fig12_strong_scaling(scale=10, algorithms=("pb",))
        er = t.filtered(kind="er", algorithm="pb")
        speedups = er.column("speedup")
        assert speedups[0] == 1.0
        assert speedups[-1] > 4.0

    def test_fig13_phases_present(self):
        t = fig13_phase_breakdown(scale=10)
        phases = set(t.column("phase"))
        assert phases == {"symbolic", "expand", "sort", "compress"}

    def test_fig14_shapes(self):
        t = fig14_dual_socket(scale=11)
        # ER on 2 sockets: PB best.
        er2 = t.filtered(kind="er", sockets=2)
        pb = er2.filtered(algorithm="pb").rows[0]["mflops"]
        assert pb >= max(
            er2.filtered(algorithm=a).rows[0]["mflops"] for a in ("heap", "hash")
        )

    def test_table2(self):
        t = table2_access_patterns()
        pb = t.filtered(algorithm="pb").rows[0]
        heap = t.filtered(algorithm="heap").rows[0]
        assert pb["reads_A"] == 1.0 and pb["A_streamed"] == "yes"
        assert heap["reads_A"] > 2.0 and heap["A_streamed"] == "no"
        assert pb["chat_accesses"] == 2 and heap["chat_accesses"] == 0

    def test_table3_ratios_near_one(self):
        t = table3_phase_costs(scale=10)
        for row in t:
            if row["ratio"] is not None:
                assert 0.9 <= row["ratio"] <= 1.6

    def test_table5_reproduces_paper(self):
        t = table5_stream()
        single = t.filtered(sockets=1).rows[0]
        assert single["copy"] == pytest.approx(47.40)
        assert single["triad"] == pytest.approx(57.04)

    def test_table6_stats(self):
        t = table6_matrix_stats(names=("scircuit",), scale_factor=1 / 64)
        row = t.rows[0]
        assert row["cf"] == pytest.approx(row["paper_cf"], rel=0.6)
        assert row["d"] == pytest.approx(row["paper_d"], rel=0.35)

    def test_table7_matches_spec(self):
        t = table7_numa()
        local = t.filtered(from_socket=0, to_socket=0).rows[0]
        remote = t.filtered(from_socket=0, to_socket=1).rows[0]
        assert local["gbs"] == 50.26 and remote["gbs"] == 33.36
