"""Tests of the ``repro.multiply`` front door and ``@`` delegation.

The kernels keep their strict ``(A as CSC, B as CSR)`` contract;
``multiply`` accepts COO / CSR / CSC / scipy.sparse / dense ndarray in
either position and converts.  Every combination must yield the same
canonical CSR product.
"""

import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.core import PBConfig
from repro.errors import ConfigError, FormatError, ShapeError
from repro.kernels import scipy_spgemm_oracle
from repro.matrix import COOMatrix, CSCMatrix, CSRMatrix
from repro.matrix.ops import allclose
from tests.util import random_coo

FORMATS = ("coo", "csr", "csc")


@pytest.fixture(scope="module")
def pair():
    rng = np.random.default_rng(7)
    a = random_coo(rng, 25, 19, 80, duplicates=True)
    b = random_coo(rng, 19, 31, 80, duplicates=True)
    return a, b


@pytest.fixture(scope="module")
def reference(pair):
    a, b = pair
    return scipy_spgemm_oracle(a.to_csc(), b.to_csr())


def _as(mat: COOMatrix, fmt: str):
    return mat if fmt == "coo" else getattr(mat, f"to_{fmt}")()


class TestFormatMatrix:
    @pytest.mark.parametrize("fmt_a", FORMATS)
    @pytest.mark.parametrize("fmt_b", FORMATS)
    def test_all_nine_combinations(self, pair, reference, fmt_a, fmt_b):
        a, b = pair
        c = repro.multiply(_as(a, fmt_a), _as(b, fmt_b))
        assert isinstance(c, CSRMatrix)
        assert allclose(c, reference)

    def test_dense_operands(self, pair, reference):
        a, b = pair
        c = repro.multiply(a.to_dense(), b.to_dense())
        assert isinstance(c, CSRMatrix)
        assert allclose(c, reference)

    def test_scipy_operands(self, pair, reference):
        a, b = pair
        a_sp = sp.coo_matrix(a.to_dense())
        b_sp = sp.csc_matrix(b.to_dense())
        c = repro.multiply(a_sp, b_sp)
        assert allclose(c, reference)

    def test_mixed_native_and_foreign(self, pair, reference):
        a, b = pair
        c = repro.multiply(a.to_csr(), sp.csr_matrix(b.to_dense()))
        assert allclose(c, reference)

    def test_unsupported_operand_raises(self, pair):
        a, b = pair
        with pytest.raises(FormatError, match="operand A"):
            repro.multiply("not a matrix", b)
        with pytest.raises(FormatError, match="operand B"):
            repro.multiply(a, [[1, 2], [3, 4]])

    def test_shape_mismatch(self, pair):
        a, _ = pair
        other = COOMatrix((a.shape[1] + 1, 4), [], [], [])
        with pytest.raises(ShapeError, match="cannot multiply"):
            repro.multiply(a, other)


class TestMatmulOperator:
    @pytest.mark.parametrize("fmt_a", FORMATS)
    @pytest.mark.parametrize("fmt_b", FORMATS)
    def test_operator_equals_multiply(self, pair, reference, fmt_a, fmt_b):
        a, b = pair
        c = _as(a, fmt_a) @ _as(b, fmt_b)
        assert isinstance(c, CSRMatrix)
        assert allclose(c, reference)

    def test_csr_at_dense_stays_dense(self, pair):
        a, b = pair
        out = a.to_csr() @ b.to_dense()
        assert isinstance(out, np.ndarray)
        np.testing.assert_allclose(out, a.to_dense() @ b.to_dense(), atol=1e-9)

    def test_operator_shape_mismatch(self, pair):
        a, _ = pair
        tall = CSCMatrix.identity(a.shape[1] + 3)
        with pytest.raises(ShapeError):
            a.to_csr() @ tall


class TestRouting:
    @pytest.mark.parametrize("alg", ("heap", "hash", "hashvec", "spa", "esc_column"))
    def test_algorithm_selection(self, pair, reference, alg):
        a, b = pair
        assert allclose(repro.multiply(a, b, algorithm=alg), reference)

    def test_config_reaches_pb(self, pair, reference):
        a, b = pair
        c = repro.multiply(a, b, config=PBConfig(nbins=4, chunk_flops=32))
        assert allclose(c, reference)

    def test_config_reaches_column_kernels(self, pair, reference):
        # Since the panel rewrite the column kernels are config-aware:
        # column_backend / panel_tuples select their execution strategy.
        a, b = pair
        cfg = PBConfig(column_backend="loop")
        assert allclose(repro.multiply(a, b, algorithm="hash", config=cfg),
                        reference)

    def test_config_rejected_for_config_blind_algorithm(self, pair, monkeypatch):
        # Every registered algorithm is config-aware today; stub in a
        # config-blind one to keep the guard covered.
        from repro.kernels import dispatch

        a, b = pair
        dummy = dispatch.AlgorithmInfo(
            "dummy", lambda a, b, semiring: None, "column", "accumulator",
            "hash", "d", 0, "test-only config-blind stub",
        )
        monkeypatch.setitem(dispatch.ALGORITHMS, "dummy", dummy)
        with pytest.raises(ConfigError, match="does not apply"):
            repro.multiply(a, b, algorithm="dummy", config=PBConfig(nbins=4))

    def test_string_semiring(self, pair):
        a, b = pair
        by_name = repro.multiply(a, b, semiring="max_times")
        by_obj = repro.multiply(a, b, semiring=repro.semiring.MAX_TIMES)
        assert allclose(by_name, by_obj)

    def test_spgemm_alias(self, pair, reference):
        # repro.spgemm shares multiply's forgiving format contract; the
        # strict positional entry point lives at repro.kernels.spgemm.
        a, b = pair
        assert allclose(repro.spgemm(a, b), reference)
        assert allclose(
            repro.spgemm(a.to_csr(), b.to_csc(), algorithm="heap"), reference
        )

    def test_exported_at_top_level(self):
        assert "multiply" in repro.__all__
        assert callable(repro.process_backend_available)
