"""Tests for the application layer, verified against networkx/numpy."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import (
    bfs_levels,
    bounded_hop_distances,
    clustering_coefficients,
    count_triangles,
    count_walks,
    markov_clustering,
    multi_source_bfs,
    pagerank,
    triangles_per_vertex,
)
from repro.errors import ShapeError
from repro.generators import banded, block_diagonal, erdos_renyi
from repro.matrix import CSRMatrix


def undirected_graph(n, p, seed):
    rng = np.random.default_rng(seed)
    up = np.triu(rng.random((n, n)) < p, k=1)
    sym = (up | up.T).astype(float)
    return CSRMatrix.from_dense(sym), nx.from_numpy_array(sym)


@pytest.fixture(scope="module")
def graph():
    return undirected_graph(80, 0.08, seed=7)


class TestTriangles:
    def test_count_matches_networkx(self, graph):
        adj, g = graph
        assert count_triangles(adj) == sum(nx.triangles(g).values()) // 3

    def test_per_vertex_matches_networkx(self, graph):
        adj, g = graph
        tri = triangles_per_vertex(adj)
        expected = nx.triangles(g)
        np.testing.assert_allclose(tri, [expected[i] for i in range(80)])

    def test_clustering_matches_networkx(self, graph):
        adj, g = graph
        cc = clustering_coefficients(adj)
        expected = nx.clustering(g)
        np.testing.assert_allclose(cc, [expected[i] for i in range(80)], atol=1e-12)

    def test_triangle_free_graph(self):
        adj = banded(20, 1)  # a path-with-selfloops band; strip diag handled
        assert count_triangles(adj) == 0

    def test_complete_graph(self):
        n = 7
        adj = CSRMatrix.from_dense(np.ones((n, n)) - np.eye(n))
        assert count_triangles(adj) == n * (n - 1) * (n - 2) // 6

    def test_self_loops_ignored(self):
        dense = np.ones((4, 4))  # includes diagonal
        adj = CSRMatrix.from_dense(dense)
        assert count_triangles(adj) == 4  # K4 has 4 triangles

    def test_requires_square(self):
        with pytest.raises(ShapeError):
            count_triangles(CSRMatrix.empty((3, 4)))


class TestBFS:
    def test_levels_match_networkx(self, graph):
        adj, g = graph
        lv = bfs_levels(adj, 0)
        expected = nx.single_source_shortest_path_length(g, 0)
        for v in range(80):
            assert lv[v] == expected.get(v, -1)

    def test_multi_source_consistent(self, graph):
        adj, _ = graph
        sources = [0, 5, 11]
        multi = multi_source_bfs(adj, sources)
        for j, s in enumerate(sources):
            np.testing.assert_array_equal(multi[:, j], bfs_levels(adj, s))

    def test_max_depth(self, graph):
        adj, _ = graph
        lv = multi_source_bfs(adj, [0], max_depth=1)[:, 0]
        assert set(np.unique(lv)).issubset({-1, 0, 1})

    def test_disconnected(self):
        adj = block_diagonal(2, 5, seed=1)
        lv = bfs_levels(adj, 0)
        assert np.all(lv[5:] == -1)
        assert np.all(lv[:5] >= 0)

    def test_empty_sources(self, graph):
        adj, _ = graph
        assert multi_source_bfs(adj, []).shape == (80, 0)

    def test_source_out_of_range(self, graph):
        adj, _ = graph
        with pytest.raises(ShapeError):
            bfs_levels(adj, 99)

    def test_directed_edges_respected(self):
        # 0 -> 1 -> 2, no way back.
        dense = np.zeros((3, 3))
        dense[0, 1] = 1
        dense[1, 2] = 1
        adj = CSRMatrix.from_dense(dense)
        lv = bfs_levels(adj, 0)
        assert lv.tolist() == [0, 1, 2]
        assert bfs_levels(adj, 2).tolist() == [-1, -1, 0]


class TestPageRank:
    def test_matches_networkx(self, graph):
        adj, g = graph
        pr = pagerank(adj, damping=0.85, tol=1e-12)
        expected = nx.pagerank(g, alpha=0.85, tol=1e-12)
        np.testing.assert_allclose(pr, [expected[i] for i in range(80)], atol=1e-6)

    def test_sums_to_one(self, graph):
        adj, _ = graph
        assert pagerank(adj).sum() == pytest.approx(1.0)

    def test_dangling_nodes(self):
        dense = np.zeros((4, 4))
        dense[1, 0] = 1.0  # 0 -> 1; nodes 1,2,3 dangle
        adj = CSRMatrix.from_dense(dense)
        pr = pagerank(adj)
        assert pr.sum() == pytest.approx(1.0)
        assert pr[1] > pr[0]

    def test_invalid_damping(self, graph):
        adj, _ = graph
        with pytest.raises(ValueError):
            pagerank(adj, damping=1.5)

    def test_empty_graph(self):
        assert pagerank(CSRMatrix.empty((0, 0))).shape == (0,)


class TestMCL:
    def test_recovers_planted_blocks(self):
        adj = block_diagonal(3, 12, seed=5)
        sym = CSRMatrix.from_dense(
            np.maximum(adj.to_dense(), adj.to_dense().T)
        )
        res = markov_clustering(sym, inflation=2.0)
        assert res.n_clusters == 3
        labels = res.labels
        truth = np.repeat(np.arange(3), 12)
        # Each block maps to exactly one cluster.
        for b in range(3):
            assert len(np.unique(labels[truth == b])) == 1

    def test_converges(self):
        adj = block_diagonal(2, 8, seed=2)
        sym = CSRMatrix.from_dense(np.maximum(adj.to_dense(), adj.to_dense().T))
        res = markov_clustering(sym)
        assert res.converged
        assert res.iterations >= 1

    def test_result_labels_consecutive(self):
        adj = block_diagonal(4, 6, seed=3)
        sym = CSRMatrix.from_dense(np.maximum(adj.to_dense(), adj.to_dense().T))
        res = markov_clustering(sym)
        assert set(res.labels.tolist()) == set(range(res.n_clusters))

    def test_invalid_inflation(self):
        with pytest.raises(ValueError):
            markov_clustering(CSRMatrix.identity(4), inflation=1.0)

    def test_empty(self):
        res = markov_clustering(CSRMatrix.empty((0, 0)))
        assert res.n_clusters == 0 and res.converged


class TestWalks:
    def test_walk_counts_match_matrix_power(self, graph):
        adj, _ = graph
        for k in (0, 1, 2, 3):
            w = count_walks(adj, k)
            np.testing.assert_allclose(
                w.to_dense(), np.linalg.matrix_power(adj.to_dense(), k), atol=1e-9
            )

    def test_negative_length(self, graph):
        adj, _ = graph
        with pytest.raises(ValueError):
            count_walks(adj, -1)

    def test_bounded_hop_matches_networkx(self):
        rng = np.random.default_rng(4)
        up = np.triu(rng.random((30, 30)) < 0.12, k=1)
        weights = np.triu(rng.uniform(1, 5, (30, 30)), k=1) * up
        sym = weights + weights.T
        adj = CSRMatrix.from_dense(sym)
        g = nx.from_numpy_array(sym)
        hops = 3
        dist = bounded_hop_distances(adj, hops).to_dense()
        for i in range(30):
            lengths = nx.single_source_dijkstra_path_length(g, i)
            paths = nx.single_source_dijkstra_path(g, i)
            for j, d in lengths.items():
                if i == j:
                    continue
                if len(paths[j]) - 1 <= hops and dist[i, j] != 0:
                    assert dist[i, j] <= d + 1e-9 or dist[i, j] == pytest.approx(d)

    def test_bounded_hop_one_is_adjacency(self, graph):
        adj, _ = graph
        d1 = bounded_hop_distances(adj, 1)
        np.testing.assert_allclose(d1.to_dense(), adj.to_dense())

    def test_negative_weights_rejected(self):
        adj = CSRMatrix.from_dense(np.array([[0.0, -1.0], [0.0, 0.0]]))
        with pytest.raises(ValueError):
            bounded_hop_distances(adj, 2)
