"""Tests for variable-range (flop-balanced) binning — paper Sec. V-C."""

import numpy as np
import pytest

from repro.core import PBConfig, pb_spgemm, pb_spgemm_detailed
from repro.core.binning import VariableBinLayout, balanced_bin_edges
from repro.errors import ConfigError
from repro.generators import erdos_renyi, rmat
from repro.kernels import scipy_spgemm_oracle
from repro.matrix.ops import allclose


class TestBalancedEdges:
    def test_uniform_work_gives_equal_ranges(self):
        edges = balanced_bin_edges(np.ones(100), 4)
        assert edges.tolist() == [0, 25, 50, 75, 100]

    def test_skewed_work_narrows_hot_bins(self):
        work = np.ones(100)
        work[:10] = 100.0
        edges = balanced_bin_edges(work, 4)
        widths = np.diff(edges)
        # Early (hot) bins cover fewer rows than late (cold) ones.
        assert widths[0] < widths[-1]

    def test_covers_all_rows(self):
        rng = np.random.default_rng(0)
        work = rng.pareto(1.2, size=257)
        edges = balanced_bin_edges(work, 16)
        assert edges[0] == 0 and edges[-1] == 257
        assert np.all(np.diff(edges) >= 0)

    def test_zero_work(self):
        edges = balanced_bin_edges(np.zeros(10), 2)
        assert edges[0] == 0 and edges[-1] == 10

    def test_more_bins_than_rows(self):
        edges = balanced_bin_edges(np.ones(3), 10)
        assert edges[-1] == 3

    def test_invalid_bins(self):
        with pytest.raises(ConfigError):
            balanced_bin_edges(np.ones(5), 0)

    def test_balance_improves_on_fixed_ranges(self):
        rng = np.random.default_rng(1)
        work = rng.pareto(1.0, size=1024) + 0.01
        nb = 16
        fixed_loads = np.add.reduceat(work, np.arange(0, 1024, 1024 // nb))
        edges = balanced_bin_edges(work, nb)
        var_loads = np.add.reduceat(work, edges[:-1])
        assert var_loads.max() <= fixed_loads.max()


class TestVariableLayout:
    def test_bin_of_rows(self):
        layout = VariableBinLayout(10, 8, np.array([0, 3, 7, 10]))
        rows = np.array([0, 2, 3, 6, 7, 9])
        assert layout.bin_of_rows(rows).tolist() == [0, 0, 1, 1, 2, 2]

    def test_row_range(self):
        layout = VariableBinLayout(10, 8, np.array([0, 3, 10]))
        assert layout.row_range(0) == (0, 3)
        assert layout.row_range(1) == (3, 10)

    def test_invalid_edges(self):
        with pytest.raises(ConfigError):
            VariableBinLayout(10, 8, np.array([1, 10]))
        with pytest.raises(ConfigError):
            VariableBinLayout(10, 8, np.array([0, 7, 5, 10]))

    def test_key_bits_from_widest_bin(self):
        layout = VariableBinLayout(1000, 100, np.array([0, 10, 1000]))
        assert layout.rows_per_bin == 990
        assert layout.key_bits == layout.row_bits + layout.col_bits


class TestBalancedPB:
    def test_matches_oracle_er(self):
        a = erdos_renyi(400, 6, seed=2)
        cfg = PBConfig(bin_mapping="balanced", nbins=16)
        c = pb_spgemm(a.to_csc(), a.to_csr(), config=cfg)
        assert allclose(c, scipy_spgemm_oracle(a.to_csc(), a.to_csr()))

    def test_matches_oracle_rmat(self):
        a = rmat(9, 8, seed=4)
        cfg = PBConfig(bin_mapping="balanced", nbins=32)
        c = pb_spgemm(a.to_csc(), a.to_csr(), config=cfg)
        assert allclose(c, scipy_spgemm_oracle(a.to_csc(), a.to_csr()))

    def test_bins_more_even_on_skewed_input(self):
        a = rmat(10, 8, seed=4, shuffle=False)  # hubs at low ids: worst case
        fixed = pb_spgemm_detailed(
            a.to_csc(), a.to_csr(), config=PBConfig(nbins=16)
        )
        balanced = pb_spgemm_detailed(
            a.to_csc(), a.to_csr(), config=PBConfig(bin_mapping="balanced", nbins=16)
        )
        assert balanced.tuples_per_bin.max() <= fixed.tuples_per_bin.max()
        assert balanced.tuples_per_bin.sum() == fixed.tuples_per_bin.sum()

    def test_detailed_reports_variable_layout(self):
        a = erdos_renyi(200, 4, seed=1)
        res = pb_spgemm_detailed(
            a.to_csc(), a.to_csr(), config=PBConfig(bin_mapping="balanced", nbins=8)
        )
        assert res.layout.mapping == "variable"
