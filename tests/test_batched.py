"""Block-diagonal batch fusion (:mod:`repro.core.batched`).

The serve scheduler's throughput mechanism: diag(A_1..A_p) ·
diag(B_1..B_p) = diag(A_1 B_1 .. A_p B_p), executed as ONE PB multiply.
The contract under test is *bit*-identity: every split-out product must
equal its standalone ``repro.multiply`` exactly — indptr, indices, and
value bytes — for every registered semiring, because stacked expansion
visits block columns in the same order a standalone run would and every
downstream phase (stable distribute, stable LSD sort, left-to-right
compress fold) preserves that order.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro

pytestmark = pytest.mark.parallel
from repro import PBConfig
from repro.core.batched import fused_multiply_detailed, split_product, stack_pairs
from repro.matrix import CSRMatrix
from repro.semiring import available_semirings


def _csr_from_dense(dense) -> CSRMatrix:
    dense = np.asarray(dense, dtype=np.float64)
    indptr = [0]
    indices = []
    data = []
    for row in dense:
        (nz,) = np.nonzero(row)
        indices.extend(nz.tolist())
        data.extend(row[nz].tolist())
        indptr.append(len(indices))
    return CSRMatrix(
        dense.shape,
        np.asarray(indptr, dtype=np.int64),
        np.asarray(indices, dtype=np.int64),
        np.asarray(data, dtype=np.float64),
    )


def _pairs(mixed_shapes: bool = True):
    """Coerced (A_csc, B_csr) pairs: mixed sizes, a rectangular block,
    and an all-zero block."""
    rng = np.random.default_rng(42)
    out = []
    for n in (8, 13) if mixed_shapes else (8, 8):
        b = repro.erdos_renyi(n, 3, seed=n, fmt="csr")
        out.append((b.to_csc(), b))
    if mixed_shapes:
        a = _csr_from_dense(rng.integers(0, 3, size=(5, 9)).astype(float))
        b = _csr_from_dense(rng.integers(0, 3, size=(9, 4)).astype(float))
        out.append((a.to_csc(), b))
        zero = _csr_from_dense(np.zeros((6, 6)))
        out.append((zero.to_csc(), zero))
    return out


def _assert_identical(ref, got):
    assert np.array_equal(ref.indptr, got.indptr)
    assert np.array_equal(ref.indices, got.indices)
    assert ref.data.tobytes() == got.data.tobytes()


class TestStackSplit:
    def test_offsets_and_shape(self):
        pairs = _pairs()
        a_stacked, b_stacked, meta = stack_pairs(pairs)
        assert a_stacked.shape[0] == sum(a.shape[0] for a, _ in pairs)
        assert a_stacked.shape[1] == b_stacked.shape[0]
        assert b_stacked.shape[1] == sum(b.shape[1] for _, b in pairs)
        assert a_stacked.indptr[-1] == sum(len(a.data) for a, _ in pairs)
        assert meta["row_offsets"][0] == 0
        assert len(meta["shapes"]) == len(pairs)

    def test_split_roundtrip(self):
        pairs = _pairs()
        cfg = PBConfig()
        refs = [repro.multiply(a, b, config=cfg) for a, b in pairs]
        products, detail = fused_multiply_detailed(pairs, config=cfg)
        assert len(products) == len(pairs)
        for ref, got in zip(refs, products):
            _assert_identical(ref, got)
        assert detail.c.shape[0] == sum(a.shape[0] for a, _ in pairs)
        assert "expand" in detail.phase_seconds

    def test_single_pair(self):
        pairs = _pairs()[:1]
        (product,), _ = fused_multiply_detailed(pairs, config=PBConfig())
        _assert_identical(repro.multiply(*pairs[0], config=PBConfig()), product)

    @pytest.mark.parametrize("name", sorted(available_semirings()))
    def test_bit_identity_per_semiring(self, name):
        pairs = _pairs()
        cfg = PBConfig()
        refs = [repro.multiply(a, b, semiring=name, config=cfg) for a, b in pairs]
        products, _ = fused_multiply_detailed(pairs, semiring=name, config=cfg)
        for ref, got in zip(refs, products):
            _assert_identical(ref, got)

    def test_split_product_copies(self):
        # Split products own their data: mutating one block must not
        # alias another block or the stacked product.
        pairs = _pairs(mixed_shapes=False)
        a_stacked, b_stacked, meta = stack_pairs(pairs)
        c = repro.multiply(a_stacked, b_stacked, config=PBConfig())
        blocks = split_product(c, meta)
        before = c.data.tobytes()
        for blk in blocks:
            if blk.data.size:
                blk.data[:] = -1.0
        assert c.data.tobytes() == before


class TestSessionFusedPath:
    def test_multiply_many_fused_matches_loop(self):
        b = repro.erdos_renyi(32, 3, seed=9, fmt="csr")
        pairs = [(b, b)] * 3
        with repro.Session(PBConfig(executor="process", nthreads=2)) as s:
            looped = s.multiply_many(pairs, fused=False)
            fused = s.multiply_many(pairs, fused=True)
            assert s.stats.fused_waves == 1
            assert s.stats.fused_requests == 3
        for ref, got in zip(looped, fused):
            _assert_identical(ref, got)

    def test_fused_requires_compatible_kwargs(self):
        b = repro.erdos_renyi(16, 2, seed=1, fmt="csr")
        with repro.Session(PBConfig(executor="process", nthreads=2)) as s:
            with pytest.raises(ValueError, match="fused"):
                s.multiply_many([(b, b), (b, b)], fused=True, algorithm="hash")
            # auto mode silently falls back to the per-pair loop.
            out = s.multiply_many([(b, b), (b, b)], algorithm="hash")
            assert len(out) == 2 and s.stats.fused_waves == 0
