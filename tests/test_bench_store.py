"""Unified benchmark subsystem: schema, suites, store, regression gate.

Replaces the four per-harness ``tests/test_*_bench.py`` files: every
suite now produces one :class:`repro.bench.BenchResult`, so one
parametrized module covers what used to be four copies of the same
shape checks — plus the parts that only exist now (the on-disk trend
store and the commit-over-commit regression gate).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import (
    EXPERIMENT_SUITES,
    PERF_SUITES,
    AcceptanceCheck,
    BenchError,
    BenchResult,
    ResultStore,
    Suite,
    check_result,
    compare_results,
    get_suite,
    load_result,
    migrate_legacy,
    new_result,
    register_suite,
    run_suite,
    validate_result,
)
from repro.bench.schema import SCHEMA_VERSION, detect_legacy_suite
from repro.bench.suites.experiments import EXPERIMENTS, tables_from_result
from repro.cli import main

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Quick-mode suite runs, with the markers the per-suite test files
#: used to carry so ``-m column`` etc. still select this coverage.
SUITE_PARAMS = [
    pytest.param("hotpath"),
    pytest.param("planner", marks=pytest.mark.planner),
    pytest.param("column", marks=pytest.mark.column),
    pytest.param("session", marks=[pytest.mark.session, pytest.mark.parallel]),
    pytest.param("jit", marks=pytest.mark.jit),
    pytest.param("serve", marks=[pytest.mark.serve, pytest.mark.parallel]),
]

#: Suites whose committed artifact predates the shared schema (they
#: carry a ``migrate`` hook); newer suites commit native-v2 artifacts.
LEGACY_SUITES = tuple(
    name for name in PERF_SUITES if get_suite(name).migrate is not None
)


@pytest.fixture(scope="module")
def quick_results():
    """Run each suite at most once (quick, reps=1) for the whole module."""
    cache: dict[str, BenchResult] = {}

    def get(name: str) -> BenchResult:
        if name not in cache:
            cache[name] = run_suite(name, quick=True, reps=1)
        return cache[name]

    return get


def _synthetic(
    suite="synth",
    metrics=None,
    acceptance=None,
    *,
    quick=False,
    created=None,
    machine_fp=None,
) -> BenchResult:
    r = new_result(
        suite,
        quick=quick,
        reps=1,
        workloads=["w0"],
        metrics={"speedup": 2.0} if metrics is None else metrics,
        acceptance={"invariant": True} if acceptance is None else acceptance,
    )
    if created is not None:
        r.created_unix = float(created)
    if machine_fp is not None:
        r.machine["fingerprint"] = machine_fp
    return r


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------

class TestSchema:
    def test_round_trip(self, tmp_path):
        r = _synthetic(metrics={"a.b_s": 0.5, "c": 3.0})
        path = r.write(tmp_path / "r.json")
        loaded = load_result(path)
        assert loaded.suite == r.suite
        assert loaded.metrics == r.metrics
        assert loaded.acceptance == r.acceptance
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.machine["fingerprint"] == r.machine["fingerprint"]

    def test_validate_rejects_drift(self):
        good = _synthetic().to_dict()
        validate_result(good)
        for mutate in (
            lambda d: d.pop("suite"),
            lambda d: d.update(schema_version=99),
            lambda d: d.update(workloads=[]),
            lambda d: d["metrics"].update(bad=float("nan")),
            lambda d: d["metrics"].update(bad="fast"),
            lambda d: d["acceptance"].update(bad=1),
            lambda d: d.update(acceptance={}),
            lambda d: d["machine"].pop("fingerprint"),
        ):
            data = json.loads(json.dumps(good))
            mutate(data)
            with pytest.raises(BenchError):
                validate_result(data)

    def test_bench_error_is_value_error(self):
        # The legacy validate_report contract raised ValueError.
        import repro

        assert issubclass(BenchError, ValueError)
        assert repro.BenchError is BenchError
        assert repro.BenchResult is BenchResult

    def test_quick_and_ok_properties(self):
        assert _synthetic(quick=True).quick
        assert not _synthetic().quick
        assert not _synthetic(acceptance={"a": True, "b": False}).ok


# ---------------------------------------------------------------------------
# committed legacy artifacts migrate onto the shared schema
# ---------------------------------------------------------------------------

class TestLegacyMigration:
    @pytest.mark.parametrize("name", PERF_SUITES)
    def test_artifact_loads_and_passes_declared_bars(self, name):
        suite = get_suite(name)
        r = load_result(REPO_ROOT / suite.artifact)
        assert r.suite == name
        assert not r.quick  # committed artifacts are full runs
        if suite.migrate is not None:  # committed before the shared schema
            assert r.meta["migrated_from_schema_version"] == 1
        validate_result(r.to_dict())
        # The pinned full-run bars the old per-suite tests enforced are
        # now declared on the suites; the artifacts must still clear them.
        assert check_result(r) == []

    @pytest.mark.parametrize("name", LEGACY_SUITES)
    def test_detect_legacy_suite(self, name):
        suite = get_suite(name)
        data = json.loads((REPO_ROOT / suite.artifact).read_text())
        assert detect_legacy_suite(data) == name

    def test_pinned_full_run_bars(self):
        # Spot-check the headline numbers the retired test files pinned.
        hot = load_result(REPO_ROOT / "BENCH_hotpath.json")
        assert hot.metrics["sort_phase_speedup"] >= 1.5
        assert hot.metrics["end_to_end_speedup"] >= 1.2
        col = load_result(REPO_ROOT / "BENCH_column.json")
        assert col.metrics["hash_speedup"] >= 10.0
        assert col.metrics["spa_speedup"] >= 10.0
        pl = load_result(REPO_ROOT / "BENCH_planner.json")
        assert pl.metrics["mean_feedback_regret"] <= 1.25
        assert pl.metrics["max_overhead_fraction"] <= 0.05
        srv = load_result(REPO_ROOT / "BENCH_serve.json")
        assert srv.metrics["batched_speedup"] >= 1.3
        assert srv.metrics["mean_wave_size"] > 1.0
        ses = load_result(REPO_ROOT / "BENCH_session.json")
        assert ses.metrics["warm_speedup"] >= 1.5
        assert set(w for w in ses.workloads if w != "er_s9_ef4") == {
            "er_s16_ef16",
            "rmat_s14_ef8",
        }

    def test_migration_is_one_shot(self, tmp_path):
        src = REPO_ROOT / "BENCH_session.json"
        migrated = migrate_legacy(json.loads(src.read_text()))
        path = migrated.write(tmp_path / "BENCH_session.json")
        again = load_result(path)  # now loads natively, no migration
        assert again.schema_version == SCHEMA_VERSION
        assert again.metrics == migrated.metrics
        assert again.acceptance == migrated.acceptance

    def test_migrate_rejects_wrong_version(self):
        with pytest.raises(BenchError):
            migrate_legacy({"schema_version": 2})
        with pytest.raises(BenchError):
            detect_legacy_suite({"schema_version": 1, "surprise": {}})


# ---------------------------------------------------------------------------
# quick suite runs through the registry
# ---------------------------------------------------------------------------

class TestQuickRuns:
    @pytest.mark.parametrize("name", SUITE_PARAMS)
    def test_schema_and_acceptance(self, quick_results, name):
        r = quick_results(name)
        assert r.suite == name and r.quick
        validate_result(r.to_dict())
        assert check_result(r) == []
        declared = set(get_suite(name).workloads["quick"])
        assert set(r.workloads) == declared

    @pytest.mark.parametrize("name", SUITE_PARAMS)
    def test_store_round_trip_and_gate_vs_committed(
        self, quick_results, name, tmp_path
    ):
        r = quick_results(name)
        store = ResultStore(tmp_path / "store")
        path = store.add(r, commit="deadbee")
        assert path.is_file() and store.suites() == [name]
        current = store.latest(name)
        assert current.metrics == r.metrics

        baseline = load_result(REPO_ROOT / get_suite(name).artifact)
        report = compare_results(current, baseline)
        # Mode mismatch: numerics skipped, acceptance booleans gated.
        assert report.ok
        booleans = [d for d in report.deltas if d.metric.startswith("acceptance.")]
        assert booleans and all(d.status != "regressed" for d in booleans)
        assert any("mode mismatch" in why for _, why in report.skipped)

    def test_hotpath_phases_from_stopwatches(self, quick_results):
        r = quick_results("hotpath")
        for w in r.workloads:
            assert {"symbolic", "expand"} <= set(r.phases[w])


# ---------------------------------------------------------------------------
# result store
# ---------------------------------------------------------------------------

class TestResultStore:
    def test_trend_history_and_prefix_lookup(self, tmp_path):
        store = ResultStore(tmp_path)
        store.add(_synthetic(metrics={"speedup": 2.0}, created=100), commit="aaa1111")
        store.add(_synthetic(metrics={"speedup": 2.5}, created=200), commit="bbb2222")
        entries = store.entries("synth")
        assert [e.commit for e in entries] == ["aaa1111", "bbb2222"]
        assert store.latest("synth").metrics["speedup"] == 2.5
        assert (
            store.latest("synth", exclude_commit="bbb2222").metrics["speedup"] == 2.0
        )
        assert store.load("synth", "aaa").metrics["speedup"] == 2.0
        with pytest.raises(BenchError, match="no stored result"):
            store.load("synth", "ccc")

    def test_same_second_collision_keeps_both(self, tmp_path):
        store = ResultStore(tmp_path)
        p1 = store.add(_synthetic(created=100), commit="aaa1111")
        p2 = store.add(_synthetic(created=100), commit="aaa1111")
        assert p1 != p2 and len(store.entries("synth")) == 2

    def test_torn_write_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.add(_synthetic(created=100), commit="aaa1111")
        (tmp_path / "synth" / "torn.json").write_text("{not json")
        assert len(store.entries("synth")) == 1

    def test_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "nothing")
        assert store.suites() == []
        assert store.latest("synth") is None


# ---------------------------------------------------------------------------
# regression gate
# ---------------------------------------------------------------------------

class TestRegressionGate:
    def test_improvement_passes(self):
        report = compare_results(
            _synthetic(metrics={"speedup": 2.4}), _synthetic(metrics={"speedup": 2.0})
        )
        assert report.ok and report.deltas[-1].status != "regressed"
        assert any(d.status == "improved" for d in report.deltas)

    def test_regression_within_tolerance_passes(self):
        # 10% worse on a higher-is-better metric, default tolerance 25%.
        report = compare_results(
            _synthetic(metrics={"speedup": 1.8}), _synthetic(metrics={"speedup": 2.0})
        )
        assert report.ok
        assert any(d.status == "within_tolerance" for d in report.deltas)

    def test_regression_beyond_tolerance_fails(self):
        report = compare_results(
            _synthetic(metrics={"speedup": 1.0}), _synthetic(metrics={"speedup": 2.0})
        )
        assert not report.ok
        assert [d.metric for d in report.regressions] == ["speedup"]
        assert "FAIL" in report.summary()

    def test_direction_inference(self):
        # regret is lower-is-better: 1.0 -> 1.2 is a 20% worsening (within
        # the 25% default), 1.0 -> 1.5 is beyond it.
        base = _synthetic(metrics={"regret": 1.0})
        assert compare_results(_synthetic(metrics={"regret": 1.2}), base).ok
        assert not compare_results(_synthetic(metrics={"regret": 1.5}), base).ok

    def test_seconds_get_wider_tolerance(self):
        # 40% slower wall clock is within the 50% seconds tolerance...
        base = _synthetic(metrics={"end_to_end.new_s": 1.0})
        assert compare_results(_synthetic(metrics={"end_to_end.new_s": 1.4}), base).ok
        # ...but 60% is not.
        assert not compare_results(
            _synthetic(metrics={"end_to_end.new_s": 1.6}), base
        ).ok

    def test_explicit_tolerances_override(self):
        base = _synthetic(metrics={"speedup": 2.0})
        cur = _synthetic(metrics={"speedup": 1.8})
        assert not compare_results(cur, base, tolerances={"speedup": 0.05}).ok
        assert not compare_results(cur, base, tolerances={"*": 0.05}).ok

    def test_no_history_skips_gracefully(self):
        report = compare_results(_synthetic(), None)
        assert report.ok and report.compared == 0 and report.skipped
        assert "SKIP" in report.summary()

    def test_acceptance_flip_fails_across_modes(self):
        # A correctness boolean that held on a full run must keep holding
        # on a smoke run — no tolerance, no mode exemption.
        base = _synthetic(acceptance={"invariant": True}, quick=False)
        cur = _synthetic(acceptance={"invariant": False}, quick=True)
        report = compare_results(cur, base)
        assert not report.ok
        assert report.regressions[0].metric == "acceptance.invariant"

    def test_machine_mismatch_skips_absolute_times_only(self):
        base = _synthetic(metrics={"warm_s": 1.0, "speedup": 2.0}, machine_fp="m1")
        cur = _synthetic(metrics={"warm_s": 9.0, "speedup": 2.0}, machine_fp="m2")
        report = compare_results(cur, base)
        assert report.ok  # the 9x wall-clock blowup is incomparable: skipped
        assert [d.metric for d in report.deltas if not d.metric.startswith("acceptance.")] == ["speedup"]
        assert any("machine fingerprint" in why for _, why in report.skipped)

    def test_suite_mismatch_raises(self):
        with pytest.raises(BenchError, match="cannot compare"):
            compare_results(_synthetic(suite="a"), _synthetic(suite="b"))


# ---------------------------------------------------------------------------
# CLI gate wiring (exit codes)
# ---------------------------------------------------------------------------

def _register_gate_suite(speedup: float = 2.0, healthy: bool = True) -> str:
    name = "synthgate"

    def runner(quick=False, reps=1):
        return new_result(
            name,
            quick=quick,
            reps=reps,
            workloads=["w0"],
            metrics={"speedup": speedup},
            acceptance={"invariant": healthy},
        )

    register_suite(Suite(name=name, description="test-only synthetic suite", runner=runner))
    return name


class TestCLIGate:
    def test_run_stores_and_passes(self, tmp_path, capsys):
        name = _register_gate_suite()
        rc = main(["bench", "run", name, "--smoke", "--store", str(tmp_path)])
        assert rc == 0
        assert ResultStore(tmp_path).suites() == [name]
        assert f"{name}: ok" in capsys.readouterr().out

    def test_run_fails_on_acceptance_violation(self, tmp_path, capsys):
        name = _register_gate_suite(healthy=False)
        rc = main(["bench", "run", name, "--smoke", "--store", str(tmp_path)])
        assert rc == 1
        assert "ACCEPTANCE FAILURE" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "current_speedup,expected_rc",
        [(2.4, 0), (1.8, 0), (1.0, 1)],  # improve / within tol / beyond tol
    )
    def test_compare_exit_codes(self, tmp_path, capsys, current_speedup, expected_rc):
        name = _register_gate_suite()
        store = ResultStore(tmp_path)
        store.add(
            _synthetic(name, metrics={"speedup": 2.0}, created=100), commit="aaa1111"
        )
        store.add(
            _synthetic(name, metrics={"speedup": current_speedup}, created=200),
            commit="bbb2222",
        )
        rc = main(["bench", "compare", "--store", str(tmp_path), "--suites", name])
        assert rc == expected_rc
        out = capsys.readouterr().out
        assert ("FAIL" in out) == bool(expected_rc)

    def test_compare_empty_store_skips(self, tmp_path, capsys):
        rc = main(["bench", "compare", "--store", str(tmp_path / "empty")])
        assert rc == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_compare_no_history_skips(self, tmp_path, capsys):
        name = _register_gate_suite()
        store = ResultStore(tmp_path)
        store.add(_synthetic(name, created=100), commit="aaa1111")
        # Only one commit in the store and no committed artifact for the
        # synthetic suite: the gate reports a skip, not a crash.
        rc = main(["bench", "compare", "--store", str(tmp_path), "--suites", name])
        assert rc == 0
        assert "skipping" in capsys.readouterr().out

    def test_compare_against_explicit_commit(self, tmp_path):
        name = _register_gate_suite()
        store = ResultStore(tmp_path)
        store.add(
            _synthetic(name, metrics={"speedup": 4.0}, created=100), commit="aaa1111"
        )
        store.add(
            _synthetic(name, metrics={"speedup": 2.0}, created=200), commit="bbb2222"
        )
        rc = main(
            ["bench", "compare", "aaa1", "--store", str(tmp_path), "--suites", name]
        )
        assert rc == 1  # halved against the pinned baseline commit

    def test_compare_tolerance_override(self, tmp_path):
        name = _register_gate_suite()
        store = ResultStore(tmp_path)
        store.add(
            _synthetic(name, metrics={"speedup": 2.0}, created=100), commit="aaa1111"
        )
        store.add(
            _synthetic(name, metrics={"speedup": 1.9}, created=200), commit="bbb2222"
        )
        args = ["bench", "compare", "--store", str(tmp_path), "--suites", name]
        assert main(args) == 0
        assert main(args + ["--tolerance", "0.01"]) == 1


# ---------------------------------------------------------------------------
# experiment suites
# ---------------------------------------------------------------------------

class TestExperimentSuites:
    def test_registry_in_sync(self):
        assert set(EXPERIMENTS) == set(EXPERIMENT_SUITES)
        for name in EXPERIMENT_SUITES:
            assert get_suite(name).name == name

    def test_fig3_runs_through_shared_schema(self):
        r = run_suite("fig3", quick=True)
        validate_result(r.to_dict())
        assert r.acceptance["tables_nonempty"]
        tables = tables_from_result(r)
        assert tables and len(tables[0]) > 0
        assert "Roofline" in tables[0].title

    def test_acceptance_check_describe(self):
        c = AcceptanceCheck("bar", "speedup", "ge", 1.5, full_only=True)
        assert "speedup >= 1.5" in c.describe()
        assert c.evaluate(_synthetic(quick=True)) is None  # full-only on smoke
        assert c.evaluate(_synthetic(metrics={"speedup": 2.0})) is True
        assert c.evaluate(_synthetic(metrics={"speedup": 1.0})) is False
