"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.matrix.io import read_matrix_market


@pytest.fixture
def er_mtx(tmp_path):
    path = tmp_path / "a.mtx"
    rc = main(
        ["matrix", "generate", "er", str(path), "--scale", "7", "--edge-factor",
         "4", "--seed", "1"]
    )
    assert rc == 0
    return path


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_groups_require_subcommand(self):
        for group in ("matrix", "bench"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([group])

    def test_bare_machine_is_capability_report(self):
        # `repro machine` with no subcommand is the runtime capability
        # probe (incl. the JIT tier), not a usage error.
        args = build_parser().parse_args(["machine"])
        assert args.func.__name__ == "_cmd_machine_info"


class TestCanonicalTree:
    """The grouped spellings are the documented interface."""

    def test_matrix_stats(self, er_mtx, capsys):
        assert main(["matrix", "stats", str(er_mtx)]) == 0
        assert "mean degree" in capsys.readouterr().out

    def test_matrix_multiply_shares_exec_flags(self, er_mtx, capsys):
        rc = main(
            ["matrix", "multiply", str(er_mtx), "--algorithm", "pb",
             "--sort-backend", "argsort"]
        )
        assert rc == 0
        assert "C = A*B" in capsys.readouterr().out

    def test_plan_accepts_exec_flags(self, er_mtx, capsys):
        rc = main(
            ["plan", str(er_mtx), "--no-calibration", "--sort-backend", "radix",
             "--column-backend", "panel"]
        )
        assert rc == 0

    def test_machine_roofline(self, capsys):
        assert main(["machine", "roofline", "--cf", "1,2"]) == 0
        assert "Roofline" in capsys.readouterr().out

    def test_machine_stream(self, capsys):
        assert main(["machine", "stream", "--machine", "skylake"]) == 0
        assert "47.4" in capsys.readouterr().out

    def test_machine_simulate(self, er_mtx, capsys):
        assert main(["machine", "simulate", str(er_mtx), "--algorithms", "pb"]) == 0
        assert "MFLOPS" in capsys.readouterr().out


class TestDeprecatedAliases:
    """Pre-tree spellings keep working but warn with the canonical path."""

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("generate", "repro matrix generate"),
            ("stats", "repro matrix stats"),
            ("multiply", "repro matrix multiply"),
            ("simulate", "repro machine simulate"),
            ("roofline", "repro machine roofline"),
            ("stream", "repro machine stream"),
        ],
    )
    def test_alias_warns(self, alias, canonical, er_mtx, tmp_path, capsys):
        argv = {
            "generate": ["generate", "er", str(tmp_path / "g.mtx"), "--scale", "6"],
            "stats": ["stats", str(er_mtx)],
            "multiply": ["multiply", str(er_mtx)],
            "simulate": ["simulate", str(er_mtx), "--algorithms", "pb"],
            "roofline": ["roofline", "--cf", "1"],
            "stream": ["stream"],
        }[alias]
        with pytest.warns(DeprecationWarning, match=canonical):
            assert main(argv) == 0

    def test_canonical_does_not_warn(self, capsys):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main(["machine", "stream"]) == 0


class TestBenchCLI:
    def test_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for suite in ("hotpath", "planner", "column", "session", "fig3", "table7"):
            assert f"{suite}:" in out

    def test_list_verbose_shows_checks(self, capsys):
        assert main(["bench", "list", "-v"]) == 0
        out = capsys.readouterr().out
        assert "BENCH_hotpath.json" in out
        assert "sort_phase_speedup >= 1.5" in out

    def test_run_unknown_suite(self, capsys):
        assert main(["bench", "run", "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_run_output_requires_single_suite(self, tmp_path, capsys):
        rc = main(
            ["bench", "run", "fig3", "table5", "--output", str(tmp_path / "r.json")]
        )
        assert rc == 2

    def test_run_experiment_suite_json_and_output(self, tmp_path, capsys):
        out = tmp_path / "fig3.json"
        rc = main(["bench", "run", "fig3", "--json", "--output", str(out)])
        assert rc == 0
        from repro.bench import load_result

        r = load_result(out)
        assert r.suite == "fig3" and r.acceptance["tables_nonempty"]
        assert '"suite": "fig3"' in capsys.readouterr().out

    def test_migrate_to_output_dir(self, tmp_path, capsys):
        import shutil
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        legacy = tmp_path / "BENCH_hotpath.json"
        shutil.copy(repo_root / "BENCH_hotpath.json", legacy)
        outdir = tmp_path / "migrated"
        outdir.mkdir()
        rc = main(["bench", "migrate", str(legacy), "--output-dir", str(outdir)])
        assert rc == 0
        from repro.bench import SCHEMA_VERSION, load_result

        migrated = load_result(outdir / "BENCH_hotpath.json")
        assert migrated.schema_version == SCHEMA_VERSION
        # The original is untouched.
        import json

        assert json.loads(legacy.read_text())["schema_version"] == 1

    def test_migrate_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["bench", "migrate", str(bad)]) == 2
        assert capsys.readouterr().err


class TestGenerate:
    def test_er(self, er_mtx):
        m = read_matrix_market(er_mtx)
        assert m.shape == (128, 128)
        assert m.nnz > 400

    def test_rmat(self, tmp_path, capsys):
        path = tmp_path / "r.mtx"
        assert main(["generate", "rmat", str(path), "--scale", "6"]) == 0
        assert read_matrix_market(path).shape == (64, 64)
        assert "wrote" in capsys.readouterr().out

    def test_surrogate(self, tmp_path):
        path = tmp_path / "s.mtx"
        rc = main(
            ["generate", "surrogate", str(path), "--name", "scircuit",
             "--scale-factor", "0.01"]
        )
        assert rc == 0
        assert read_matrix_market(path).nnz > 0


class TestStats:
    def test_basic(self, er_mtx, capsys):
        assert main(["stats", str(er_mtx)]) == 0
        out = capsys.readouterr().out
        assert "128 x 128" in out
        assert "mean degree" in out

    def test_square(self, er_mtx, capsys):
        assert main(["stats", str(er_mtx), "--square"]) == 0
        out = capsys.readouterr().out
        assert "compression cf" in out


class TestMultiply:
    def test_square_default(self, er_mtx, capsys):
        assert main(["multiply", str(er_mtx)]) == 0
        assert "C = A*B" in capsys.readouterr().out

    def test_output_file(self, er_mtx, tmp_path, capsys):
        out = tmp_path / "c.mtx"
        assert main(["multiply", str(er_mtx), "--output", str(out)]) == 0
        c = read_matrix_market(out)
        # verify against scipy
        a = read_matrix_market(er_mtx)
        from repro.kernels import scipy_spgemm_oracle
        from repro.matrix.ops import allclose

        assert allclose(c.to_csr(), scipy_spgemm_oracle(a.to_csc(), a.to_csr()))

    @pytest.mark.parametrize("alg", ["heap", "hash", "spa"])
    def test_algorithms(self, er_mtx, alg, capsys):
        assert main(["multiply", str(er_mtx), "--algorithm", alg]) == 0

    def test_two_operands(self, er_mtx, tmp_path, capsys):
        assert main(["multiply", str(er_mtx), str(er_mtx)]) == 0

    @pytest.mark.parametrize("backend", ["radix", "argsort", "mergesort"])
    def test_sort_backend(self, er_mtx, backend, capsys):
        assert main(["multiply", str(er_mtx), "--sort-backend", backend]) == 0
        assert "C = A*B" in capsys.readouterr().out

    def test_sort_backend_identical_products(self, er_mtx, tmp_path):
        outs = {}
        for backend in ("radix", "argsort"):
            out = tmp_path / f"c_{backend}.mtx"
            rc = main(
                ["multiply", str(er_mtx), "--sort-backend", backend,
                 "--output", str(out)]
            )
            assert rc == 0
            outs[backend] = read_matrix_market(out).to_csr()
        import numpy as np

        assert np.array_equal(outs["radix"].data, outs["argsort"].data)
        assert np.array_equal(outs["radix"].indices, outs["argsort"].indices)

    def test_sort_backend_requires_pb(self, er_mtx, capsys):
        rc = main(
            ["multiply", str(er_mtx), "--algorithm", "hash",
             "--sort-backend", "argsort"]
        )
        assert rc == 2
        assert "--sort-backend" in capsys.readouterr().err


class TestSimulate:
    def test_default(self, er_mtx, capsys):
        assert main(["simulate", str(er_mtx)]) == 0
        out = capsys.readouterr().out
        assert "MFLOPS" in out and "pb" in out

    def test_machine_and_threads(self, er_mtx, capsys):
        rc = main(
            ["simulate", str(er_mtx), "--machine", "power9", "--threads", "10",
             "--algorithms", "pb"]
        )
        assert rc == 0
        assert "power9" in capsys.readouterr().out


class TestInfoCommands:
    def test_roofline(self, capsys):
        assert main(["roofline", "--cf", "1,2"]) == 0
        assert "Roofline" in capsys.readouterr().out

    def test_stream(self, capsys):
        assert main(["stream", "--machine", "skylake"]) == 0
        assert "47.4" in capsys.readouterr().out

    def test_experiment_table7(self, capsys):
        assert main(["experiment", "table7"]) == 0
        assert "NUMA" in capsys.readouterr().out

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        assert "Roofline" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
