"""Cross-backend property suite for the panel-vectorized column kernels.

The contract under test (DESIGN.md §11): for every shipped semiring and
every input shape, ``column_backend="panel"`` and ``column_backend="loop"``
produce **bit-identical** canonical CSR — same indptr, same indices, and
byte-for-byte equal data, not merely allclose.  The loop backends are the
faithful algorithm transcriptions, so they are the ground truth; the
panel path must reproduce their accumulation order exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.config import PBConfig
from repro.errors import ConfigError, ShapeError
from repro.generators import erdos_renyi, rmat
from repro.kernels import (
    esc_column_spgemm,
    hash_spgemm,
    hashvec_spgemm,
    heap_spgemm,
    panel_spgemm,
    resolve_column_backend,
    spa_spgemm,
)
from repro.kernels.hashvec_spgemm import _table_size
from repro.matrix.coo import COOMatrix
from repro.matrix.csc import CSCMatrix
from repro.matrix.csr import CSRMatrix
from repro.semiring import available_semirings, get_semiring

pytestmark = pytest.mark.column

KERNELS = {
    "heap": heap_spgemm,
    "hash": hash_spgemm,
    "hashvec": hashvec_spgemm,
    "spa": spa_spgemm,
}

SEMIRINGS = available_semirings()


def _hub_skew(seed=7):
    """A deliberately skewed pair: B's first column selects *every*
    column of A (a hub output column), the rest are sparse noise."""
    rng = np.random.default_rng(seed)
    m = n = 64
    rows = list(range(n))
    cols = [0] * n  # B(:, 0) dense -> C(:, 0) merges all of A's columns
    rng_rows = rng.integers(0, n, size=150)
    rng_cols = rng.integers(1, n, size=150)
    b = COOMatrix(
        (n, n),
        np.concatenate([rows, rng_rows]),
        np.concatenate([cols, rng_cols]),
        rng.normal(size=n + 150),
    )
    a = COOMatrix(
        (m, n),
        rng.integers(0, m, size=400),
        rng.integers(0, n, size=400),
        rng.normal(size=400),
    )
    return a.to_csc(), b.to_csr()


def _dup_heavy(seed=3):
    """R-MAT squared: power-law rows make long duplicate runs per key."""
    g = rmat(7, 8, seed=seed)
    return g.to_csc(), g


def _cases():
    er = erdos_renyi(128, 6, seed=11)
    return {
        "empty_matrix": (CSCMatrix.empty((40, 30)), CSRMatrix.empty((30, 20))),
        "empty_columns": (
            # B has many structurally empty columns interleaved.
            COOMatrix((16, 16), [0, 5, 9], [2, 2, 7], [1.5, -2.0, 3.25]).to_csc(),
            COOMatrix((16, 16), [2, 2, 7], [0, 8, 8], [0.5, 1.25, -1.0]).to_csr(),
        ),
        "one_by_n": (
            COOMatrix((1, 8), [0] * 8, range(8), np.arange(1.0, 9.0)).to_csc(),
            COOMatrix(
                (8, 5), [0, 1, 2, 3, 7, 7], [0, 1, 2, 3, 4, 0],
                [2.0, -1.0, 0.5, 4.0, 1.0, -3.0],
            ).to_csr(),
        ),
        "er": (er.to_csc(), er),
        "dup_heavy_rmat": _dup_heavy(),
        "hub_skew": _hub_skew(),
    }


CASES = _cases()


def _bits(c):
    return (c.indptr.tobytes(), c.indices.tobytes(), c.data.tobytes())


class TestPanelLoopBitIdentity:
    @pytest.mark.parametrize("semiring", SEMIRINGS)
    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_bit_identical(self, kernel, case, semiring):
        a, b = CASES[case]
        loop = KERNELS[kernel](a, b, semiring=semiring, column_backend="loop")
        pan = KERNELS[kernel](a, b, semiring=semiring, column_backend="panel")
        assert _bits(loop) == _bits(pan)

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_tiny_panels_still_identical(self, kernel):
        # panel_tuples=1 forces one output column (or less) per panel —
        # the maximal-panel-count degenerate case.
        a, b = CASES["dup_heavy_rmat"]
        loop = KERNELS[kernel](a, b, column_backend="loop")
        pan = KERNELS[kernel](a, b, column_backend="panel", panel_tuples=1)
        assert _bits(loop) == _bits(pan)

    def test_kernels_agree_with_each_other(self):
        a, b = CASES["er"]
        ref = None
        for kernel in sorted(KERNELS):
            got = _bits(KERNELS[kernel](a, b))
            ref = ref or got
            assert got == ref


class TestEscColumnBackends:
    @pytest.mark.parametrize("semiring", SEMIRINGS)
    def test_arena_matches_concat(self, semiring):
        a, b = CASES["dup_heavy_rmat"]
        arena = esc_column_spgemm(a, b, semiring=semiring, expand_backend="arena")
        concat = esc_column_spgemm(a, b, semiring=semiring, expand_backend="concat")
        assert _bits(arena) == _bits(concat)

    def test_invalid_expand_backend(self):
        a, b = CASES["er"]
        with pytest.raises(ConfigError):
            esc_column_spgemm(a, b, expand_backend="bogus")

    def test_shape_mismatch_raises_shape_error(self):
        a = CSCMatrix.identity(4)
        b = CSRMatrix.identity(5)
        with pytest.raises(ShapeError):
            esc_column_spgemm(a, b)


class TestConfigPlumbing:
    def test_resolve_precedence(self):
        cfg = PBConfig(column_backend="loop", panel_tuples=77)
        assert resolve_column_backend(cfg, None, None) == ("loop", 77)
        # Explicit kwargs beat config.
        assert resolve_column_backend(cfg, "panel", 5) == ("panel", 5)

    def test_resolve_defaults(self):
        from repro.kernels import DEFAULT_PANEL_TUPLES

        assert resolve_column_backend(None, None, None) == (
            "panel",
            DEFAULT_PANEL_TUPLES,
        )

    def test_resolve_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            resolve_column_backend(None, "vector", None)
        with pytest.raises(ConfigError):
            resolve_column_backend(None, "panel", 0)

    def test_pbconfig_validates_column_fields(self):
        with pytest.raises(ConfigError):
            PBConfig(column_backend="bogus")
        with pytest.raises(ConfigError):
            PBConfig(panel_tuples=0)

    def test_config_reaches_kernel_through_multiply(self):
        a, b = CASES["er"]
        loop = repro.multiply(a, b, algorithm="hash",
                              config=PBConfig(column_backend="loop"))
        pan = repro.multiply(a, b, algorithm="hash",
                             config=PBConfig(panel_tuples=64))
        assert _bits(loop) == _bits(pan)

    def test_registry_metadata(self):
        from repro.kernels.dispatch import algorithm_metadata

        meta = algorithm_metadata()
        for name in KERNELS:
            assert meta[name]["column_backends"] == ["panel", "loop", "panel_jit"]
            assert meta[name]["supports_config"]
        assert meta["pb"]["column_backends"] == []


class TestSegmentReduce:
    def test_empty(self):
        sr = get_semiring("plus_times")
        keys, vals = sr.segment_reduce(
            np.empty(0, np.uint64), np.empty(0, np.float64)
        )
        assert len(keys) == 0 and len(vals) == 0

    def test_length_mismatch(self):
        sr = get_semiring("plus_times")
        with pytest.raises(ValueError):
            sr.segment_reduce(np.zeros(3, np.uint64), np.zeros(2))

    def test_plus_is_sequential_left_fold(self):
        # The panel/loop bit-identity hinges on this: duplicate runs
        # must fold left-to-right in input order, not pairwise.
        sr = get_semiring("plus_times")
        rng = np.random.default_rng(0)
        vals = rng.normal(size=64)
        keys = np.zeros(64, dtype=np.uint64)
        _, reduced = sr.segment_reduce(keys, vals)
        acc = 0.0
        for v in vals:
            acc += float(v)
        assert reduced[0] == acc  # bit-equal, not approx

    def test_stable_within_run(self):
        # Equal keys keep input order before folding (stable sort).
        sr = get_semiring("min_plus")
        keys = np.array([2, 1, 2, 1], dtype=np.uint64)
        vals = np.array([5.0, 7.0, 3.0, 1.0])
        uk, uv = sr.segment_reduce(keys, vals)
        assert uk.tolist() == [1, 2]
        assert uv.tolist() == [1.0, 3.0]

    def test_non_ufunc_add_fallback(self):
        from repro.semiring import Semiring

        # add_ufunc is a plain callable, not an np.ufunc — forces the
        # lexsort + per-run Python fold path.
        sr = Semiring("custom_plus", lambda x, y: x + y, np.multiply, 0.0)
        keys = np.array([1, 1, 2], dtype=np.uint64)
        vals = np.array([1.0, 2.0, 10.0])
        uk, uv = sr.segment_reduce(keys, vals)
        assert uk.tolist() == [1, 2]
        assert uv.tolist() == [3.0, 10.0]


class TestLoopFixes:
    def test_table_size_zero_upper(self):
        assert _table_size(0) == 0
        assert _table_size(-3) == 0

    def test_table_size_positive(self):
        assert _table_size(1) == 2
        assert _table_size(3) == 8
        for u in (1, 2, 5, 17, 100):
            s = _table_size(u)
            assert s >= 2 * u and (s & (s - 1)) == 0

    def test_add_scalar_matches_ufunc(self):
        plus = get_semiring("plus_times")
        assert plus.add_scalar(0.1, 0.2) == 0.1 + 0.2
        mn = get_semiring("min_plus")
        assert mn.add_scalar(3.0, -1.0) == -1.0

    def test_add_scalar_returns_python_float(self):
        plus = get_semiring("plus_times")
        out = plus.add_scalar(np.float64(1.5), np.float64(2.5))
        assert isinstance(out, float) and not isinstance(out, np.floating)


class TestPanelDirect:
    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            panel_spgemm(CSCMatrix.identity(4), CSRMatrix.identity(5))

    def test_matches_dense_reference(self):
        a, b = CASES["er"]
        c = panel_spgemm(a, b)
        want = a.to_dense() @ b.to_dense()
        np.testing.assert_allclose(c.to_dense(), want, rtol=1e-12)
