"""Smoke coverage for the column-backend perf harness (``perf`` marker).

Tier-1-safe: runs ``benchmarks/bench_column.py --quick`` on small
inputs and validates the JSON schema — of the fresh quick run and of
the committed repo-root ``BENCH_column.json`` artifact — so a schema
drift or a silently-broken backend fails fast without timing anything
at full scale.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_column", REPO_ROOT / "benchmarks" / "bench_column.py"
)
bench_column = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_column)

pytestmark = [pytest.mark.perf, pytest.mark.column]

SEMIRINGS = {"plus_times", "min_plus", "max_times", "or_and", "plus_pair"}


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("column") / "BENCH_column.json"
    assert bench_column.main(["--quick", "--reps", "1", "--output", str(out)]) == 0
    return json.loads(out.read_text())


def test_quick_run_validates(quick_report):
    data = bench_column.validate_report(quick_report)
    assert data["meta"]["quick"] is True
    assert data["acceptance"]["identity_all"] is True
    for w in data["workloads"]:
        assert set(data["kernels"][w]) == {"hash", "heap", "hashvec", "spa"}
        assert set(data["identity"][w]) == SEMIRINGS
        # The planner comparison must price the whole registry and
        # measure pb/esc_column alongside the panel column kernels.
        assert {"pb", "esc_column"} <= set(data["planner"][w]["measured_s"])
        assert set(data["planner"][w]["predicted_s"]) >= {
            "pb", "esc_column", "hash", "heap", "hashvec", "spa",
        }


def test_committed_artifact_is_valid():
    path = REPO_ROOT / "BENCH_column.json"
    assert path.exists(), "BENCH_column.json must be committed at the repo root"
    data = bench_column.validate_report(json.loads(path.read_text()))
    assert data["meta"]["quick"] is False, "the committed artifact is a full run"
    acc = data["acceptance"]
    # The PR's acceptance bars, pinned so a perf regression that slips
    # into a refreshed artifact is caught at review time.
    assert acc["workload"] == "er_s16_ef16"
    assert acc["hash_speedup"] >= 10.0
    assert acc["spa_speedup"] >= 10.0
    assert acc["identity_all"] is True
    assert acc["planner_match"] is True


def test_validate_report_rejects_bad_payloads(quick_report):
    with pytest.raises(ValueError, match="schema_version"):
        bench_column.validate_report({**quick_report, "schema_version": 99})
    with pytest.raises(ValueError, match="missing top-level"):
        bench_column.validate_report(
            {k: v for k, v in quick_report.items() if k != "planner"}
        )
    broken = json.loads(json.dumps(quick_report))
    w = broken["workloads"][0]
    broken["identity"][w]["plus_times"] = False
    with pytest.raises(ValueError, match="bit-exactness"):
        bench_column.validate_report(broken)
    broken2 = json.loads(json.dumps(quick_report))
    broken2["kernels"][w]["hash"]["panel_s"] = 0
    with pytest.raises(ValueError, match="positive"):
        bench_column.validate_report(broken2)
    # A full-run payload must clear the speedup floor and planner match.
    full = json.loads(json.dumps(quick_report))
    full["meta"]["quick"] = False
    full["acceptance"]["spa_speedup"] = 2.0
    with pytest.raises(ValueError, match="floor"):
        bench_column.validate_report(full)
