"""Tests for the PB-SpGEMM core: config, symbolic, binning, pipeline."""

import numpy as np
import pytest

from repro.core import (
    BinLayout,
    PBConfig,
    pack_keys,
    partitioned_pb_spgemm,
    pb_spgemm,
    pb_spgemm_detailed,
    plan_bins,
    symbolic_phase,
    unpack_keys,
)
from repro.core.binning import (
    distribute_packed,
    distribute_to_bins,
    simulate_local_bins,
)
from repro.errors import ConfigError, ShapeError
from repro.generators import erdos_renyi, rmat
from repro.kernels import scipy_spgemm_oracle
from repro.matrix import CSCMatrix, CSRMatrix
from repro.matrix.ops import allclose

from tests.util import random_coo


class TestPBConfig:
    def test_defaults(self):
        cfg = PBConfig()
        assert cfg.local_bin_bytes == 512
        assert cfg.bin_mapping == "range"
        assert cfg.local_bin_tuples == 32

    def test_with_(self):
        cfg = PBConfig().with_(nbins=64)
        assert cfg.nbins == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(nbins=0),
            dict(local_bin_bytes=8),
            dict(l2_target_bytes=4),
            dict(bin_mapping="hash"),
            dict(sort_backend="quick"),
            dict(distribute_backend="bucket"),
            dict(expand_backend="inplace"),
            dict(chunk_flops=0),
            dict(nthreads=0),
            dict(bin_mapping="modulo", pack_keys=True),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            PBConfig(**kwargs)

    def test_hot_path_defaults(self):
        cfg = PBConfig()
        assert cfg.sort_backend == "radix"
        assert cfg.distribute_backend == "counting"
        assert cfg.expand_backend == "arena"


class TestSymbolic:
    def test_flop_exact(self, small_pair):
        from repro.matrix.stats import total_flops

        a, b = small_pair
        sym = symbolic_phase(a, b)
        assert sym.flop == total_flops(a, b)

    def test_bins_cover_rows(self, small_pair):
        a, b = small_pair
        sym = symbolic_phase(a, b)
        assert sym.nbins * sym.rows_per_bin >= a.shape[0]
        assert sym.gbin_bytes == sym.flop * 16

    def test_nbins_clamped_to_paper_band(self):
        a = erdos_renyi(1 << 12, 4, seed=0)
        sym = symbolic_phase(a.to_csc(), a)
        assert 1 <= sym.nbins <= 2048

    def test_nbins_override(self, small_pair):
        a, b = small_pair
        sym = symbolic_phase(a, b, PBConfig(nbins=8))
        assert sym.nbins == 8

    def test_nbins_never_exceeds_rows(self, small_pair):
        a, b = small_pair
        sym = symbolic_phase(a, b, PBConfig(nbins=10_000))
        assert sym.nbins <= a.shape[0]

    def test_empty(self):
        sym = symbolic_phase(CSCMatrix.empty((6, 4)), CSRMatrix.empty((4, 5)))
        assert sym.flop == 0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            symbolic_phase(CSCMatrix.empty((6, 4)), CSRMatrix.empty((5, 5)))


class TestKeyPacking:
    def _layout(self, nrows, ncols, nbins, cfg=None):
        rows_per_bin = max(1, -(-nrows // nbins))
        return plan_bins(nrows, ncols, nbins, rows_per_bin, cfg)

    def test_packs_into_32_bits_when_possible(self):
        # Paper's example: 1M rows/cols, 1K bins -> 10 + 20 bits.
        layout = self._layout(1 << 20, 1 << 20, 1024)
        assert layout.key_dtype == np.uint32
        assert layout.key_bits == 30

    def test_wide_matrix_needs_64(self):
        layout = self._layout(1 << 24, 1 << 24, 16)
        assert layout.key_dtype == np.uint64

    def test_pack_unpack_roundtrip(self, rng):
        layout = self._layout(1000, 800, 16)
        rows = rng.integers(0, 1000, size=300)
        cols = rng.integers(0, 800, size=300)
        keys = pack_keys(layout, rows, cols)
        binid = layout.bin_of_rows(rows)
        for b in np.unique(binid):
            mask = binid == b
            r2, c2 = unpack_keys(layout, keys[mask], int(b))
            np.testing.assert_array_equal(r2, rows[mask])
            np.testing.assert_array_equal(c2, cols[mask])

    def test_key_order_is_rowcol_order_within_bin(self, rng):
        layout = self._layout(100, 90, 4)
        rows = rng.integers(0, 100, size=500)
        cols = rng.integers(0, 90, size=500)
        binid = layout.bin_of_rows(rows)
        keys = pack_keys(layout, rows, cols)
        for b in np.unique(binid):
            mask = binid == b
            order = np.argsort(keys[mask], kind="stable")
            rr, cc = rows[mask][order], cols[mask][order]
            lex = np.lexsort((cols[mask], rows[mask]))
            np.testing.assert_array_equal(rr, rows[mask][lex])
            np.testing.assert_array_equal(cc, cols[mask][lex])

    def test_modulo_mapping(self, rng):
        cfg = PBConfig(bin_mapping="modulo", pack_keys=False)
        layout = self._layout(64, 64, 8, cfg)
        rows = rng.integers(0, 64, size=100)
        assert np.all(layout.bin_of_rows(rows) == rows % 8)

    def test_row_range(self):
        layout = self._layout(100, 50, 8)
        lo, hi = layout.row_range(7)
        assert lo == 7 * layout.rows_per_bin
        assert hi == 100


class TestBinning:
    def test_distribute_partitions_all(self, rng):
        layout = plan_bins(60, 40, 6, 10)
        rows = rng.integers(0, 60, size=400)
        cols = rng.integers(0, 40, size=400)
        vals = rng.normal(size=400)
        br, bc, bv, starts = distribute_to_bins(layout, rows, cols, vals)
        assert starts[-1] == 400
        for b in range(6):
            seg = br[starts[b] : starts[b + 1]]
            assert np.all(seg // 10 == b)

    def test_distribute_stable_within_bin(self):
        layout = plan_bins(4, 4, 2, 2)
        rows = np.array([0, 2, 0, 2, 1])
        cols = np.array([0, 1, 2, 3, 0])
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        br, bc, bv, starts = distribute_to_bins(layout, rows, cols, vals)
        # bin 0 keeps arrival order of rows 0,0,1
        np.testing.assert_array_equal(bc[: starts[1]], [0, 2, 0])

    def test_local_bin_stats(self):
        layout = plan_bins(4, 4, 2, 2)
        rows = np.array([0] * 70 + [3] * 10)
        stats = simulate_local_bins(layout, rows, local_bin_tuples=32)
        assert stats["full_flushes"] == 2  # 70 // 32
        assert stats["partial_flushes"] == 2  # 6 left in bin0, 10 in bin1
        assert stats["flushed_tuples"] == 80
        assert 0 < stats["mean_flush_fill"] <= 1

    def test_local_bin_stats_invalid(self):
        layout = plan_bins(4, 4, 2, 2)
        with pytest.raises(ConfigError):
            simulate_local_bins(layout, np.array([0]), 0)

    def test_counting_matches_argsort_placement(self, rng):
        layout = plan_bins(60, 40, 6, 10)
        rows = rng.integers(0, 60, size=400)
        cols = rng.integers(0, 40, size=400)
        vals = rng.normal(size=400)
        ref = distribute_to_bins(layout, rows, cols, vals, method="argsort")
        got = distribute_to_bins(layout, rows, cols, vals, method="counting")
        for r, g in zip(ref, got):
            assert np.array_equal(r, g)  # same stable placement, bit-exact

    def test_distribute_packed_fuses_pack(self, rng):
        layout = plan_bins(60, 40, 6, 10)
        rows = rng.integers(0, 60, size=400)
        cols = rng.integers(0, 40, size=400)
        vals = rng.normal(size=400)
        br, bc, bv, ref_starts = distribute_to_bins(layout, rows, cols, vals)
        keys, bvals, starts = distribute_packed(layout, rows, cols, vals)
        np.testing.assert_array_equal(starts, ref_starts)
        assert np.array_equal(bvals, bv)
        np.testing.assert_array_equal(keys, pack_keys(layout, br, bc))

    def test_distribute_packed_empty(self):
        layout = plan_bins(8, 8, 4, 2)
        keys, bvals, starts = distribute_packed(
            layout,
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([]),
        )
        assert len(keys) == len(bvals) == 0
        assert starts.tolist() == [0] * (layout.nbins + 1)

    def test_distribute_bad_method(self, rng):
        layout = plan_bins(8, 8, 4, 2)
        rows = rng.integers(0, 8, size=10)
        with pytest.raises(ConfigError):
            distribute_to_bins(layout, rows, rows, np.ones(10), method="hash")


class TestPBSpGEMM:
    def test_matches_oracle(self, small_pair):
        a, b = small_pair
        assert allclose(pb_spgemm(a, b), scipy_spgemm_oracle(a, b))

    def test_detailed_instrumentation(self, small_pair):
        a, b = small_pair
        res = pb_spgemm_detailed(a, b, collect_local_bin_stats=True)
        assert res.flop == res.symbolic.flop
        assert res.nnz_c == res.c.nnz
        assert res.compression_factor == pytest.approx(res.flop / res.nnz_c)
        assert res.tuples_per_bin.sum() == res.flop
        assert res.radix_passes >= 1
        assert res.local_bin_stats is not None
        assert res.local_bin_stats["flushed_tuples"] == res.flop

    @pytest.mark.parametrize("nbins", [1, 2, 7, 64, 1000])
    def test_any_bin_count(self, small_pair, nbins):
        a, b = small_pair
        c = pb_spgemm(a, b, config=PBConfig(nbins=nbins))
        assert allclose(c, scipy_spgemm_oracle(a, b))

    def test_modulo_mapping_correct(self, small_pair):
        a, b = small_pair
        cfg = PBConfig(bin_mapping="modulo", pack_keys=False, nbins=16)
        assert allclose(pb_spgemm(a, b, config=cfg), scipy_spgemm_oracle(a, b))

    def test_mergesort_backend(self, small_pair):
        a, b = small_pair
        cfg = PBConfig(sort_backend="mergesort")
        assert allclose(pb_spgemm(a, b, config=cfg), scipy_spgemm_oracle(a, b))

    def test_unpacked_keys(self, small_pair):
        a, b = small_pair
        cfg = PBConfig(pack_keys=False)
        res = pb_spgemm_detailed(a, b, config=cfg)
        assert res.layout.key_dtype == np.uint64
        assert allclose(res.c, scipy_spgemm_oracle(a, b))

    def test_tiny_chunks(self, small_pair):
        a, b = small_pair
        cfg = PBConfig(chunk_flops=64)
        assert allclose(pb_spgemm(a, b, config=cfg), scipy_spgemm_oracle(a, b))

    def test_empty(self):
        res = pb_spgemm_detailed(CSCMatrix.empty((5, 4)), CSRMatrix.empty((4, 3)))
        assert res.c.nnz == 0
        assert res.flop == 0

    def test_skewed(self, skewed_pair):
        a, b = skewed_pair
        assert allclose(pb_spgemm(a, b), scipy_spgemm_oracle(a, b))

    def test_rectangular(self, rect_pair):
        a, b = rect_pair
        assert allclose(pb_spgemm(a, b), scipy_spgemm_oracle(a, b))

    def test_radix_pass_count_from_key_bits(self, small_pair):
        a, b = small_pair
        res = pb_spgemm_detailed(a, b)
        assert res.radix_passes == -(-res.layout.key_bits // 8)

    def test_legacy_backends_bit_identical(self):
        # The full pre-optimization configuration must reproduce the
        # hot path's product exactly: indptr, indices and float values.
        m = erdos_renyi(1 << 9, 8, seed=3, fmt="csr")
        a = m.to_csc()
        new = pb_spgemm(a, m)
        legacy = pb_spgemm(
            a,
            m,
            config=PBConfig(
                sort_backend="argsort",
                distribute_backend="argsort",
                expand_backend="concat",
            ),
        )
        assert np.array_equal(new.indptr, legacy.indptr)
        assert np.array_equal(new.indices, legacy.indices)
        assert np.array_equal(new.data, legacy.data)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sort_backend="argsort"),
            dict(distribute_backend="argsort"),
            dict(expand_backend="concat"),
        ],
    )
    def test_single_ablation_matches_oracle(self, small_pair, kwargs):
        a, b = small_pair
        c = pb_spgemm(a, b, config=PBConfig(**kwargs))
        assert allclose(c, scipy_spgemm_oracle(a, b))

    def test_phase_seconds_are_independent_stopwatches(self, small_pair):
        a, b = small_pair
        res = pb_spgemm_detailed(a, b)
        assert {"symbolic", "expand", "sort_compress", "convert"} <= set(
            res.phase_seconds
        )
        assert all(v >= 0.0 for v in res.phase_seconds.values())


class TestPartitioned:
    @pytest.mark.parametrize("parts", [1, 2, 3, 5])
    def test_matches_oracle(self, small_pair, parts):
        a, b = small_pair
        c = partitioned_pb_spgemm(a, b, npartitions=parts)
        assert allclose(c, scipy_spgemm_oracle(a, b))

    def test_more_partitions_than_rows(self):
        rng = np.random.default_rng(1)
        a = random_coo(rng, 3, 5, 8).to_csc()
        b = random_coo(rng, 5, 4, 8).to_csr()
        c = partitioned_pb_spgemm(a, b, npartitions=10)
        assert allclose(c, scipy_spgemm_oracle(a, b))

    def test_invalid_partitions(self, small_pair):
        a, b = small_pair
        with pytest.raises(ValueError):
            partitioned_pb_spgemm(a, b, npartitions=0)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            partitioned_pb_spgemm(CSCMatrix.empty((3, 3)), CSRMatrix.empty((4, 4)))
