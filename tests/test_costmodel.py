"""Tests for the roofline model and the per-algorithm byte accounting."""

import numpy as np
import pytest

from repro.core.config import PBConfig, TUPLE_BYTES
from repro.costmodel import (
    ai_column_lower_bound,
    ai_esc_lower_bound,
    ai_upper_bound,
    algorithm_phase_costs,
    attainable_mflops,
    column_phase_costs,
    pb_phase_costs,
    roofline_curve,
    roofline_mflops,
    spgemm_arithmetic_intensity,
    workload_stats,
)
from repro.generators import erdos_renyi, rmat
from repro.machine import skylake_sp

from tests.util import random_coo


class TestRoofline:
    def test_paper_numbers_er(self):
        # Paper Sec. II-C: cf=1, b=16 -> AI upper 1/16; Eq. 4 -> 1/80.
        assert ai_upper_bound(1.0) == pytest.approx(1 / 16)
        assert ai_esc_lower_bound(1.0) == pytest.approx(1 / 80)
        assert ai_column_lower_bound(1.0) == pytest.approx(1 / 48)

    def test_peak_at_50gbs(self):
        # Paper: 50 GB/s * 1/16 = 3.13 GFLOPS.
        assert attainable_mflops(ai_upper_bound(1.0), 50.0) == pytest.approx(3125.0)
        # and 50 * 1/80 = 625 MFLOPS for the ESC bound.
        assert attainable_mflops(ai_esc_lower_bound(1.0), 50.0) == pytest.approx(625.0)

    def test_bounds_ordering(self):
        for cf in (1.0, 1.5, 2.0, 4.0, 8.0, 16.0):
            up = ai_upper_bound(cf)
            col = ai_column_lower_bound(cf)
            esc = ai_esc_lower_bound(cf)
            assert esc < col < up

    def test_monotone_in_cf(self):
        cfs = [1.0, 2.0, 4.0, 8.0]
        for f in (ai_upper_bound, ai_column_lower_bound, ai_esc_lower_bound):
            vals = [f(c) for c in cfs]
            assert vals == sorted(vals)

    def test_invalid_cf(self):
        with pytest.raises(ValueError):
            ai_upper_bound(0.5)
        with pytest.raises(ValueError):
            ai_esc_lower_bound(1.0, bytes_per_nnz=0)

    def test_roofline_mflops_bounds(self):
        assert roofline_mflops(1.0, 50.0, "upper") > roofline_mflops(1.0, 50.0, "esc")
        with pytest.raises(ValueError):
            roofline_mflops(1.0, 50.0, "sideways")

    def test_compute_ceiling(self):
        assert attainable_mflops(10.0, 100.0, peak_compute_mflops=500.0) == 500.0

    def test_measured_ai(self):
        ai = spgemm_arithmetic_intensity(100, 10, 10, 10, chat_accesses=2)
        assert ai == pytest.approx(100 / ((30 + 200) * 16))
        assert spgemm_arithmetic_intensity(0, 0, 0, 0) == 0.0

    def test_curve(self):
        pts = roofline_curve(50.0, 3000.0, points=16)
        assert len(pts) == 16
        regimes = [p.regime for p in pts]
        assert "memory" in regimes and "compute" in regimes
        flops = [p.mflops for p in pts]
        assert flops == sorted(flops)
        with pytest.raises(ValueError):
            roofline_curve(0, 10)
        with pytest.raises(ValueError):
            roofline_curve(10, 10, ai_range=(1, 1))


@pytest.fixture(scope="module")
def er_stats():
    a = erdos_renyi(1 << 11, 8, seed=4)
    return workload_stats(a.to_csc(), a)


class TestWorkloadStats:
    def test_flop_consistency(self, er_stats):
        assert er_stats.flop == er_stats.flops_per_k.sum()
        assert er_stats.flop == er_stats.flops_per_row.sum()
        assert er_stats.flop == er_stats.flops_per_col.sum()

    def test_cf_at_least_one(self, er_stats):
        assert er_stats.cf >= 1.0

    def test_bin_loads_partition_flop(self, er_stats):
        loads = er_stats.bin_loads(16)
        assert loads.sum() == er_stats.flop
        assert len(loads) == 16

    def test_bin_loads_single_bin(self, er_stats):
        loads = er_stats.bin_loads(1)
        assert loads.tolist() == [er_stats.flop]

    def test_bin_loads_invalid(self, er_stats):
        with pytest.raises(ValueError):
            er_stats.bin_loads(0)

    def test_known_nnz_c_passthrough(self):
        a = erdos_renyi(256, 4, seed=1)
        st = workload_stats(a.to_csc(), a, nnz_c=1234)
        assert st.nnz_c == 1234

    def test_rows_vs_cols_flops_match_expand(self, rng):
        from repro.kernels import expand_outer

        a = random_coo(rng, 30, 25, 80).to_csc()
        b = random_coo(rng, 25, 35, 80).to_csr()
        st = workload_stats(a, b)
        rows, cols, _ = expand_outer(a, b)
        np.testing.assert_array_equal(
            st.flops_per_row, np.bincount(rows, minlength=30)
        )
        np.testing.assert_array_equal(
            st.flops_per_col, np.bincount(cols, minlength=35)
        )


class TestPBPhaseCosts:
    def test_table3_byte_formulas(self, er_stats):
        m = skylake_sp()
        phases = {p.name: p for p in pb_phase_costs(er_stats, m)}
        b = TUPLE_BYTES
        # Expand: reads both inputs once, writes flop tuples (plus the
        # modelled flush overhead, bounded by ~15%).
        exp = phases["expand"]
        assert exp.dram_read_bytes == 12 * (er_stats.nnz_a + er_stats.nnz_b)
        assert b * er_stats.flop <= exp.dram_write_bytes <= 1.3 * b * er_stats.flop
        # Sort: reads flop tuples (no spill at this size).
        assert phases["sort"].dram_read_bytes == b * er_stats.flop
        # Compress: writes nnz(C) tuples.
        assert phases["compress"].dram_write_bytes == b * er_stats.nnz_c

    def test_no_local_bins_wastes_lines(self, er_stats):
        m = skylake_sp()
        with_bins = pb_phase_costs(er_stats, m, PBConfig(use_local_bins=True))
        without = pb_phase_costs(er_stats, m, PBConfig(use_local_bins=False))
        w1 = next(p for p in with_bins if p.name == "expand").dram_write_bytes
        w2 = next(p for p in without if p.name == "expand").dram_write_bytes
        assert w2 > 2 * w1  # 16-byte tuples on 64-byte lines -> 4x waste

    def test_wider_local_bins_more_efficient(self, er_stats):
        m = skylake_sp()
        def write_bytes(w):
            cfg = PBConfig(local_bin_bytes=w)
            return next(
                p for p in pb_phase_costs(er_stats, m, cfg) if p.name == "expand"
            ).dram_write_bytes
        assert write_bytes(64) > write_bytes(512) > write_bytes(1024)

    def test_key_packing_halves_sort_cycles(self, er_stats):
        m = skylake_sp()
        packed = next(
            p for p in pb_phase_costs(er_stats, m, PBConfig(pack_keys=True))
            if p.name == "sort"
        )
        unpacked = next(
            p for p in pb_phase_costs(er_stats, m, PBConfig(pack_keys=False))
            if p.name == "sort"
        )
        assert unpacked.compute_cycles == pytest.approx(2 * packed.compute_cycles)

    def test_oversized_bins_spill_to_dram(self):
        # Huge flop with few bins -> DRAM-resident bins -> extra streamed passes.
        a = rmat(13, 16, seed=2)
        st = workload_stats(a.to_csc(), a)
        m = skylake_sp()
        few = next(
            p for p in pb_phase_costs(st, m, PBConfig(nbins=2), nbins=2) if p.name == "sort"
        )
        many = next(
            p for p in pb_phase_costs(st, m, PBConfig(nbins=2048), nbins=2048)
            if p.name == "sort"
        )
        assert few.dram_read_bytes > many.dram_read_bytes


class TestColumnPhaseCosts:
    def test_streams_b_and_c_only(self, er_stats):
        m = skylake_sp()
        (merge,) = column_phase_costs("hash", er_stats, m)
        assert merge.dram_read_bytes == 12 * er_stats.nnz_b
        assert merge.dram_write_bytes == 12 * er_stats.nnz_c
        assert merge.random_line_touches > 0
        assert merge.overlap == "add"

    def test_random_useful_bytes_le_lines(self, er_stats):
        m = skylake_sp()
        (merge,) = column_phase_costs("heap", er_stats, m)
        assert merge.random_useful_bytes <= merge.random_line_touches * m.line_bytes

    def test_heap_costs_more_than_hash_per_flop(self, er_stats):
        m = skylake_sp()
        heap = column_phase_costs("heap", er_stats, m)[0]
        hash_ = column_phase_costs("hash", er_stats, m)[0]
        assert heap.compute_cycles > hash_.compute_cycles

    def test_skew_spills_accumulators(self):
        from repro.costmodel.bytes_model import _accumulator_spill_cycles

        m = skylake_sp()
        r = rmat(15, 16, seed=1)
        st_skew = workload_stats(r.to_csc(), r)
        e = erdos_renyi(1 << 15, 16, seed=1)
        st_er = workload_stats(e.to_csc(), e)
        skew = _accumulator_spill_cycles("hash", st_skew, m) / st_skew.flop
        er = _accumulator_spill_cycles("hash", st_er, m) / st_er.flop
        # R-MAT hub columns overflow L2 accumulators; ER columns never do.
        assert er == 0.0
        assert skew > 0.0

    def test_unknown_algorithm(self, er_stats):
        with pytest.raises(ValueError):
            column_phase_costs("pb", er_stats, skylake_sp())

    def test_dispatch(self, er_stats):
        m = skylake_sp()
        assert len(algorithm_phase_costs("pb", er_stats, m)) == 4
        assert len(algorithm_phase_costs("hash", er_stats, m)) == 1
        assert len(algorithm_phase_costs("esc_column", er_stats, m)) == 2

    def test_esc_column_chat_roundtrip(self, er_stats):
        m = skylake_sp()
        expand, sortc = algorithm_phase_costs("esc_column", er_stats, m)
        b = TUPLE_BYTES
        assert expand.dram_write_bytes == b * er_stats.flop
        assert sortc.dram_read_bytes == b * er_stats.flop
