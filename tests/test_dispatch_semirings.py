"""String semirings must work at every dispatch boundary.

``repro.kernels.spgemm`` and ``repro.multiply`` both resolve semiring
names via :func:`repro.semiring.get_semiring` before calling the
kernel, so ``semiring="min_plus"`` (and every other registered name)
must behave exactly like passing the ``Semiring`` object — for every
registered algorithm, not just PB.
"""

import numpy as np
import pytest

import repro
from repro.kernels import spgemm
from repro.kernels.dispatch import available_algorithms
from repro.matrix.ops import allclose
from repro.semiring import MIN_PLUS, available_semirings, get_semiring
from tests.util import random_coo

ALGS = sorted(available_algorithms())
SEMIRINGS = sorted(available_semirings())


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(42)
    a = random_coo(rng, 24, 18, 90, duplicates=True)
    b = random_coo(rng, 18, 30, 90, duplicates=True)
    return a.to_csc(), b.to_csr()


class TestMinPlusEverywhere:
    @pytest.mark.parametrize("alg", ALGS)
    def test_string_matches_object(self, operands, alg):
        a_csc, b_csr = operands
        by_name = spgemm(a_csc, b_csr, algorithm=alg, semiring="min_plus")
        by_obj = spgemm(a_csc, b_csr, algorithm=alg, semiring=MIN_PLUS)
        assert allclose(by_name, by_obj)

    @pytest.mark.parametrize("alg", ALGS)
    def test_algorithms_agree(self, operands, alg):
        a_csc, b_csr = operands
        got = spgemm(a_csc, b_csr, algorithm=alg, semiring="min_plus")
        ref = spgemm(a_csc, b_csr, algorithm="pb", semiring=MIN_PLUS)
        assert allclose(got, ref)

    @pytest.mark.parametrize("alg", ALGS)
    def test_through_multiply_front_door(self, operands, alg):
        a_csc, b_csr = operands
        got = repro.multiply(a_csc, b_csr, algorithm=alg, semiring="min_plus")
        ref = spgemm(a_csc, b_csr, algorithm=alg, semiring=MIN_PLUS)
        assert allclose(got, ref)


class TestAllRegisteredNames:
    @pytest.mark.parametrize("name", SEMIRINGS)
    def test_every_name_resolves_for_pb(self, operands, name):
        a_csc, b_csr = operands
        by_name = spgemm(a_csc, b_csr, algorithm="pb", semiring=name)
        by_obj = spgemm(a_csc, b_csr, algorithm="pb", semiring=get_semiring(name))
        assert allclose(by_name, by_obj)

    def test_unknown_name_lists_available(self, operands):
        a_csc, b_csr = operands
        with pytest.raises(KeyError, match="available"):
            spgemm(a_csc, b_csr, semiring="tropical_typo")
        with pytest.raises(KeyError, match="available"):
            repro.multiply(a_csc, b_csr, semiring="tropical_typo")
