"""Driver-level tests: env overrides, invalid inputs, CSV side outputs."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    BENCH_SCALE_ENV,
    SURROGATE_SCALE_ENV,
    bench_scale,
    fig7_to_10_random_matrices,
    surrogate_scale,
)
from repro.machine import skylake_sp


class TestEnvOverrides:
    def test_bench_scale_default(self, monkeypatch):
        monkeypatch.delenv(BENCH_SCALE_ENV, raising=False)
        assert bench_scale() == 13
        assert bench_scale(default=10) == 10

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv(BENCH_SCALE_ENV, "11")
        assert bench_scale() == 11

    def test_surrogate_scale_env(self, monkeypatch):
        monkeypatch.setenv(SURROGATE_SCALE_ENV, "0.25")
        assert surrogate_scale() == 0.25
        monkeypatch.delenv(SURROGATE_SCALE_ENV)
        assert surrogate_scale(default=0.5) == 0.5

    def test_env_scales_workloads(self, monkeypatch):
        monkeypatch.setenv(BENCH_SCALE_ENV, "9")
        t = fig7_to_10_random_matrices(
            skylake_sp(), "er", edge_factors=(4,), algorithms=("pb",)
        )
        assert set(t.column("scale")) == {8, 9, 10}


class TestDriverValidation:
    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="er.*rmat|rmat.*er"):
            fig7_to_10_random_matrices(skylake_sp(), "smallworld", scales=(8,))

    def test_algorithms_subset(self):
        t = fig7_to_10_random_matrices(
            skylake_sp(), "er", scales=(9,), edge_factors=(4,), algorithms=("pb", "hash")
        )
        assert set(t.column("algorithm")) == {"pb", "hash"}

    def test_deterministic_under_seed(self):
        t1 = fig7_to_10_random_matrices(
            skylake_sp(), "er", scales=(9,), edge_factors=(4,), algorithms=("pb",), seed=5
        )
        t2 = fig7_to_10_random_matrices(
            skylake_sp(), "er", scales=(9,), edge_factors=(4,), algorithms=("pb",), seed=5
        )
        assert t1.column("mflops") == t2.column("mflops")


class TestCLICsv:
    def test_experiment_csv_written(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["experiment", "table7", "--csv", str(tmp_path)])
        assert rc == 0
        csvs = list(tmp_path.glob("*.csv"))
        assert csvs, "no csv written"
        content = csvs[0].read_text()
        assert "gbs" in content and "50.26" in content
