"""Tests for the matrix generators (ER, R-MAT, surrogates, structured)."""

import numpy as np
import pytest

from repro.generators import (
    SURROGATE_SPECS,
    banded,
    bipartite_blocks,
    block_diagonal,
    diagonal,
    erdos_renyi,
    rmat,
    surrogate,
    surrogate_names,
    tall_skinny,
)
from repro.generators.rmat import RMAT_ER
from repro.matrix.stats import degree_histogram


class TestErdosRenyi:
    def test_shape_and_nnz(self):
        m = erdos_renyi(256, edge_factor=4, seed=0)
        assert m.shape == (256, 256)
        # coalescing loses only a few duplicates
        assert 0.9 * 256 * 4 <= m.nnz <= 256 * 4

    def test_deterministic(self):
        a = erdos_renyi(64, 4, seed=42)
        b = erdos_renyi(64, 4, seed=42)
        assert a.indices.tolist() == b.indices.tolist()
        assert a.data.tolist() == b.data.tolist()

    def test_different_seeds_differ(self):
        a = erdos_renyi(64, 4, seed=1)
        b = erdos_renyi(64, 4, seed=2)
        assert a.indices.tolist() != b.indices.tolist()

    def test_columns_have_d_entries(self):
        m = erdos_renyi(512, edge_factor=8, seed=3, fmt="csc")
        col_nnz = m.col_nnz()
        # exactly d per column before dedup; a few less after
        assert np.all(col_nnz <= 8)
        assert col_nnz.mean() > 7

    def test_ones_values(self):
        m = erdos_renyi(32, 2, seed=0, values="ones")
        assert np.all(m.data >= 1.0)  # duplicates may sum to 2

    def test_formats(self):
        for fmt in ("csr", "csc", "coo"):
            m = erdos_renyi(16, 2, seed=0, fmt=fmt)
            assert m.shape == (16, 16)

    def test_zero_size(self):
        m = erdos_renyi(0, 4, seed=0)
        assert m.nnz == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            erdos_renyi(-1, 4)
        with pytest.raises(ValueError):
            erdos_renyi(4, -1)
        with pytest.raises(ValueError):
            erdos_renyi(4, 1, values="gauss")
        with pytest.raises(ValueError):
            erdos_renyi(4, 1, fmt="dense")


class TestRMAT:
    def test_shape(self):
        m = rmat(8, edge_factor=8, seed=0)
        assert m.shape == (256, 256)

    def test_er_params_match_uniform(self):
        m = rmat(9, edge_factor=4, params=RMAT_ER, seed=1)
        hist = degree_histogram(m, "row")
        # Near-Poisson(4): almost no rows above degree 15
        assert hist[15:].sum() <= 2

    def test_graph500_skewed(self):
        m = rmat(11, edge_factor=8, seed=1)
        row_nnz = m.row_nnz()
        # heavy tail: the max degree dwarfs the mean
        assert row_nnz.max() > 8 * row_nnz.mean()

    def test_shuffle_spreads_hubs(self):
        raw = rmat(10, edge_factor=8, seed=5, shuffle=False)
        shuf = rmat(10, edge_factor=8, seed=5, shuffle=True)
        # Unshuffled: hubs concentrate at low ids.
        assert raw.row_nnz()[:8].sum() > shuf.row_nnz()[:8].sum()
        # Degree distribution is preserved by relabeling.
        assert sorted(raw.row_nnz().tolist()) == pytest.approx(
            sorted(shuf.row_nnz().tolist()), abs=0
        ) or raw.nnz == shuf.nnz

    def test_deterministic(self):
        a = rmat(8, 4, seed=9)
        b = rmat(8, 4, seed=9)
        assert a.indices.tolist() == b.indices.tolist()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            rmat(4, 2, params=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            rmat(-1, 2)
        with pytest.raises(ValueError):
            rmat(4, 2, params=(1.2, -0.2, 0.0, 0.0))


class TestSurrogates:
    def test_names(self):
        assert len(surrogate_names()) == 12
        assert "cant" in surrogate_names()

    def test_dimensions_scale(self):
        s = surrogate("scircuit", scale_factor=1 / 32, seed=0)
        spec = SURROGATE_SPECS["scircuit"]
        assert s.shape[0] == pytest.approx(spec.n / 32, rel=0.02)
        assert s.nnz == pytest.approx(spec.nnz / 32, rel=0.1)

    def test_mean_degree_preserved(self):
        s = surrogate("majorbasis", scale_factor=1 / 32, seed=0)
        spec = SURROGATE_SPECS["majorbasis"]
        assert s.mean_degree() == pytest.approx(spec.d, rel=0.1)

    def test_cf_calibrated(self):
        from repro.matrix import multiply_stats

        s = surrogate("2cubes_sphere", scale_factor=1 / 32, seed=0)
        ms = multiply_stats(s.to_csc(), s)
        spec = SURROGATE_SPECS["2cubes_sphere"]
        assert ms.cf == pytest.approx(spec.cf, rel=0.5)

    def test_high_cf_matrix(self):
        from repro.matrix import multiply_stats

        s = surrogate("cant", scale_factor=1 / 32, seed=0)
        ms = multiply_stats(s.to_csc(), s)
        assert ms.cf > 4.0  # the crossover side it must land on

    def test_cached(self):
        a = surrogate("mc2depi", scale_factor=1 / 32, seed=0)
        b = surrogate("mc2depi", scale_factor=1 / 32, seed=0)
        assert a is b

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            surrogate("does_not_exist")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            surrogate("cant", scale_factor=0.0)
        with pytest.raises(ValueError):
            surrogate("cant", scale_factor=2.0)


class TestStructured:
    def test_diagonal(self):
        d = diagonal([1.0, 2.0, 3.0])
        np.testing.assert_allclose(d.to_dense(), np.diag([1.0, 2.0, 3.0]))

    def test_banded(self):
        b = banded(5, bandwidth=1)
        dense = b.to_dense()
        assert dense[0, 0] == 1 and dense[0, 1] == 1 and dense[0, 2] == 0
        assert b.nnz == 5 + 4 + 4

    def test_banded_square_widens_band(self):
        from repro.kernels import spgemm

        b = banded(12, bandwidth=1)
        c = spgemm(b.to_csc(), b)
        dense = c.to_dense()
        assert dense[0, 2] != 0 and dense[0, 3] == 0

    def test_block_diagonal(self):
        m = block_diagonal(3, 4, seed=0)
        assert m.shape == (12, 12)
        assert m.nnz == 3 * 16
        dense = m.to_dense()
        assert np.all(dense[0:4, 4:] == 0)

    def test_bipartite_blocks(self):
        a, b = bipartite_blocks(10, 20, 15, density=0.2, seed=1)
        assert a.shape == (10, 20) and b.shape == (20, 15)

    def test_tall_skinny(self):
        m = tall_skinny(100, 5, 7, seed=2)
        assert m.shape == (100, 5)
        assert m.to_csc().col_nnz().max() <= 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            banded(-1)
        with pytest.raises(ValueError):
            banded(4, -1)
        with pytest.raises(ValueError):
            bipartite_blocks(2, 2, 2, density=1.5)
