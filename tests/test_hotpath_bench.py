"""Smoke coverage for the hot-path perf harness (``@pytest.mark.perf``).

Tier-1-safe: runs ``benchmarks/bench_hotpath.py --quick`` on small
inputs and validates the JSON schema — of the fresh quick run and of
the committed repo-root ``BENCH_hotpath.json`` artifact — so a schema
drift or a silently-broken ablation backend fails fast without timing
anything at full scale.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_hotpath", REPO_ROOT / "benchmarks" / "bench_hotpath.py"
)
bench_hotpath = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_hotpath)

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("hotpath") / "BENCH_hotpath.json"
    assert bench_hotpath.main(["--quick", "--reps", "1", "--output", str(out)]) == 0
    return json.loads(out.read_text())


def test_quick_run_validates(quick_report):
    data = bench_hotpath.validate_report(quick_report)
    assert data["meta"]["quick"] is True
    assert data["acceptance"]["identity_all"] is True
    # Every ablation pair must have been exercised on every workload.
    for w in data["workloads"]:
        assert set(data["kernels"][w]) == {"stats", "expand", "distribute", "sort"}
        assert set(data["identity"][w]) == {
            "plus_times",
            "min_plus",
            "max_times",
            "or_and",
            "plus_pair",
        }


def test_quick_run_times_all_backends(quick_report):
    for w in quick_report["workloads"]:
        sort = quick_report["kernels"][w]["sort"]
        for field in ("kernel_argsort_s", "kernel_radix_s", "kernel_mergesort_s"):
            assert sort[field] > 0
        phases = quick_report["end_to_end"][w]["new_phases"]
        assert {"symbolic", "expand", "sort_compress", "convert"} <= set(phases)


def test_committed_artifact_is_valid():
    path = REPO_ROOT / "BENCH_hotpath.json"
    assert path.exists(), "BENCH_hotpath.json must be committed at the repo root"
    data = bench_hotpath.validate_report(json.loads(path.read_text()))
    assert data["meta"]["quick"] is False, "the committed artifact is a full run"
    acc = data["acceptance"]
    # The PR's acceptance bars, pinned so a perf regression that slips
    # into a refreshed artifact is caught at review time.
    assert acc["sort_phase_speedup"] >= 1.5
    assert acc["end_to_end_speedup"] >= 1.2
    assert acc["identity_all"] is True


def test_validate_report_rejects_bad_payloads(quick_report):
    with pytest.raises(ValueError, match="schema_version"):
        bench_hotpath.validate_report({**quick_report, "schema_version": 99})
    with pytest.raises(ValueError, match="missing top-level"):
        bench_hotpath.validate_report(
            {k: v for k, v in quick_report.items() if k != "identity"}
        )
    broken = json.loads(json.dumps(quick_report))
    w = broken["workloads"][0]
    broken["identity"][w]["plus_times"] = False
    with pytest.raises(ValueError, match="bit-exactness"):
        bench_hotpath.validate_report(broken)
    broken2 = json.loads(json.dumps(quick_report))
    broken2["kernels"][w]["sort"]["kernel_radix_s"] = 0
    with pytest.raises(ValueError, match="positive"):
        bench_hotpath.validate_report(broken2)
