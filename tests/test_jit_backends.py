"""Compiled hot-kernel tier (repro.kernels.jit, DESIGN.md §14).

Covers the engine probe (caching, version gating, env pinning), the
four ``*_jit`` backends' bit-identity against their numpy counterparts
across every built-in semiring, the absent-degradation contract (one
structured warning, numpy results, including on process-pool workers),
warm-up hygiene (Session construction + ``jit_warmup_s`` stopwatch),
the planner's calibrated pricing (profile schema v4 + migration), and
the CLI surfaces (``repro machine --json``, backend flags).

Every test runs whether or not an engine is available: engine-requiring
assertions are guarded by :func:`repro.kernels.jit.jit_available`, and
the fallback tests *force* unavailability by pinning
``REPRO_JIT_ENGINE=numba`` behind an import blocker, so the degradation
path is exercised even on machines with a working C compiler.
"""

from __future__ import annotations

import json
import sys

import numpy as np
import pytest

import repro
from repro.core.binning import distribute_packed, plan_bins
from repro.core.config import PBConfig
from repro.core.pb_spgemm import pb_spgemm_detailed
from repro.core.symbolic import symbolic_phase
from repro.errors import ConfigError
from repro.generators import erdos_renyi
from repro.kernels import jit as jit_tier
from repro.kernels.compress import compress_keyed
from repro.kernels.hash_spgemm import hash_spgemm
from repro.kernels.jit import JITFallbackWarning
from repro.kernels.jit._avail import NUMBA_MIN_VERSION, probe
from repro.kernels.outer_expand import expand_arena
from repro.kernels.radix import radix_sort_pairs, sort_tuples
from repro.semiring import available_semirings

pytestmark = pytest.mark.jit

JIT_PB = dict(
    sort_backend="radix_jit",
    distribute_backend="counting_jit",
    compress_backend="jit",
)


@pytest.fixture
def clean_jit_state():
    """Reset the probe/engine caches around tests that perturb them."""
    jit_tier.reset_jit_state()
    yield
    jit_tier.reset_jit_state()


@pytest.fixture
def no_engine(clean_jit_state, monkeypatch):
    """Force the tier unavailable: pin the engine to numba and block its
    import, so even a machine with numba installed degrades."""

    class _Blocker:
        def find_spec(self, name, path=None, target=None):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("numba hidden by test")
            return None

    monkeypatch.setenv("REPRO_JIT_ENGINE", "numba")
    monkeypatch.syspath_prepend("")  # ensure meta_path consulted first
    monkeypatch.setattr(sys, "meta_path", [_Blocker()] + sys.meta_path)
    for mod in [m for m in sys.modules if m == "numba" or m.startswith("numba.")]:
        monkeypatch.delitem(sys.modules, mod)
    jit_tier.reset_jit_state()
    yield
    jit_tier.reset_jit_state()


def _mats(scale=9, ef=6, seed=7):
    a = erdos_renyi(1 << scale, ef, seed=seed, fmt="csr")
    b = erdos_renyi(1 << scale, ef, seed=seed + 1, fmt="csr")
    return a, b


def _bitwise_equal(c0, c1) -> bool:
    return bool(
        np.array_equal(c0.indptr, c1.indptr)
        and np.array_equal(c0.indices, c1.indices)
        and np.array_equal(
            np.asarray(c0.data).view(np.uint64),
            np.asarray(c1.data).view(np.uint64),
        )
    )


# ---------------------------------------------------------------------------
# probe
# ---------------------------------------------------------------------------

class TestProbe:
    def test_probe_is_cached(self, clean_jit_state):
        st1 = probe()
        st2 = probe()
        assert st1 is st2
        assert probe(refresh=True) is not st1 or st1 == probe()

    def test_status_dict_shape(self):
        st = jit_tier.jit_status()
        assert {
            "engine",
            "available",
            "numba_version",
            "numba_reason",
            "cc_compiler",
            "cc_reason",
            "disabled",
            "warmed",
        } <= set(st)
        assert st["available"] == (st["engine"] not in (None, "none"))

    def test_disable_env_wins(self, clean_jit_state, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_DISABLE", "1")
        jit_tier.reset_jit_state()
        st = probe()
        assert st.disabled and not st.available and st.engine == "none"
        assert not jit_tier.jit_available()

    def test_old_numba_rejected_not_crashed(self, clean_jit_state, monkeypatch):
        """A too-old numba is reported as a reason, never an exception."""
        import types

        fake = types.ModuleType("numba")
        fake.__version__ = "0.48.0"
        monkeypatch.setitem(sys.modules, "numba", fake)
        monkeypatch.setenv("REPRO_JIT_ENGINE", "numba")
        jit_tier.reset_jit_state()
        st = probe()
        assert st.engine == "none" and not st.available
        assert st.numba_version == "0.48.0"
        assert "0.48.0" in (st.numba_reason or "")
        min_str = ".".join(str(v) for v in NUMBA_MIN_VERSION)
        assert min_str in (st.numba_reason or "")

    def test_engine_pin_cc(self, clean_jit_state, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_ENGINE", "cc")
        jit_tier.reset_jit_state()
        st = probe()
        assert st.engine in ("cc", "none")  # "none" only if no compiler

    def test_engine_pin_none(self, clean_jit_state, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_ENGINE", "none")
        jit_tier.reset_jit_state()
        assert not jit_tier.jit_available()


# ---------------------------------------------------------------------------
# bit-identity of every jit backend (engine-gated)
# ---------------------------------------------------------------------------

class TestBitIdentity:
    @pytest.fixture(autouse=True)
    def _need_engine(self):
        if not jit_tier.jit_available():
            pytest.skip("no JIT engine on this machine")

    @pytest.mark.parametrize("semiring", sorted(available_semirings()))
    def test_pb_pipeline_all_jit(self, semiring):
        a, b = _mats()
        c0 = repro.multiply(a, b, semiring=semiring, config=PBConfig())
        c1 = repro.multiply(a, b, semiring=semiring, config=PBConfig(**JIT_PB))
        assert _bitwise_equal(c0, c1)

    @pytest.mark.parametrize("semiring", sorted(available_semirings()))
    def test_panel_jit_column_kernel(self, semiring):
        a, b = _mats()
        c0 = hash_spgemm(a.to_csc(), b, semiring=semiring, column_backend="panel")
        c1 = hash_spgemm(
            a.to_csc(), b, semiring=semiring, column_backend="panel_jit"
        )
        assert _bitwise_equal(c0, c1)

    def test_sort_backend_exact_permutation(self):
        rng = np.random.default_rng(3)
        for nbits in (11, 17, 22):
            keys = rng.integers(0, 1 << nbits, size=4001, dtype=np.uint64)
            vals = rng.random(4001)
            k0, v0, p0 = sort_tuples(keys, vals, key_bits=nbits, backend="radix")
            k1, v1, p1 = sort_tuples(
                keys, vals, key_bits=nbits, backend="radix_jit"
            )
            assert p0 == p1
            assert np.array_equal(k0, k1)
            assert np.array_equal(v0.view(np.uint64), v1.view(np.uint64))

    def test_sort_backend_edge_sizes(self):
        for n in (0, 1):
            keys = np.arange(n, dtype=np.uint64)
            vals = np.arange(n, dtype=np.float64)
            k1, v1, _ = sort_tuples(keys, vals, key_bits=17, backend="radix_jit")
            assert len(k1) == n and len(v1) == n

    def test_distribute_backend_identical(self):
        a, b = _mats(scale=8)
        a_csc = a.to_csc()
        cfg = PBConfig()
        sym = symbolic_phase(a_csc, b, cfg)
        layout = plan_bins(
            a_csc.shape[0], b.shape[1], sym.nbins, sym.rows_per_bin, cfg
        )
        rows, cols, vals = expand_arena(a_csc, b, per_k=sym.flops_per_k)
        k0, v0, s0 = distribute_packed(layout, rows, cols, vals, method="counting")
        k1, v1, s1 = distribute_packed(
            layout, rows, cols, vals, method="counting_jit"
        )
        assert np.array_equal(k0, k1)
        assert np.array_equal(v0.view(np.uint64), v1.view(np.uint64))
        assert np.array_equal(s0, s1)

    @pytest.mark.parametrize("semiring", sorted(available_semirings()))
    def test_compress_backend_identical(self, semiring):
        rng = np.random.default_rng(11)
        keys = np.sort(rng.integers(0, 300, size=2000, dtype=np.uint32))
        vals = rng.standard_normal(2000)
        k0, v0 = compress_keyed(keys, vals, semiring, backend="numpy")
        k1, v1 = compress_keyed(keys, vals, semiring, backend="jit")
        assert np.array_equal(k0, k1)
        assert np.array_equal(v0.view(np.uint64), v1.view(np.uint64))

    def test_compress_jit_rejects_unsorted(self):
        keys = np.array([5, 3, 9], dtype=np.uint32)
        vals = np.ones(3)
        with pytest.raises(ValueError, match="sorted"):
            compress_keyed(keys, vals, backend="jit")

    @pytest.mark.parallel
    def test_process_pool_workers_bit_identical(self):
        a, b = _mats(scale=8)
        cfg = PBConfig(executor="process", nthreads=2, **JIT_PB)
        c0 = repro.multiply(a, b, config=PBConfig())
        c1 = repro.multiply(a, b, config=cfg)
        assert _bitwise_equal(c0, c1)


# ---------------------------------------------------------------------------
# absent degradation (engine forced away)
# ---------------------------------------------------------------------------

class TestAbsentDegradation:
    def test_unavailable_when_pinned_engine_missing(self, no_engine):
        assert not jit_tier.jit_available()

    def test_single_warning_and_identical_results(self, no_engine):
        a, b = _mats(scale=8)
        with pytest.warns(JITFallbackWarning) as rec:
            c1 = repro.multiply(a, b, config=PBConfig(**JIT_PB))
            repro.multiply(a, b, config=PBConfig(**JIT_PB))  # no second warning
        assert len([w for w in rec if w.category is JITFallbackWarning]) == 1
        c0 = repro.multiply(a, b, config=PBConfig())
        assert _bitwise_equal(c0, c1)

    def test_panel_jit_falls_back(self, no_engine):
        a, b = _mats(scale=8)
        with pytest.warns(JITFallbackWarning):
            c1 = hash_spgemm(a.to_csc(), b, column_backend="panel_jit")
        c0 = hash_spgemm(a.to_csc(), b, column_backend="panel")
        assert _bitwise_equal(c0, c1)

    @pytest.mark.parallel
    def test_process_pool_falls_back_bit_identical(self, no_engine):
        a, b = _mats(scale=8)
        cfg = PBConfig(executor="process", nthreads=2, **JIT_PB)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", JITFallbackWarning)
            c1 = repro.multiply(a, b, config=cfg)
        c0 = repro.multiply(a, b, config=PBConfig())
        assert _bitwise_equal(c0, c1)

    def test_sort_tuples_falls_back_to_radix(self, no_engine):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 1 << 17, size=500, dtype=np.uint64)
        vals = rng.random(500)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", JITFallbackWarning)
            k1, v1, p1 = sort_tuples(keys, vals, key_bits=17, backend="radix_jit")
        k0, v0, p0 = radix_sort_pairs(keys, vals, key_bits=17)
        assert np.array_equal(k0, k1) and np.array_equal(v0, v1) and p0 == p1


# ---------------------------------------------------------------------------
# warm-up hygiene
# ---------------------------------------------------------------------------

class TestWarmup:
    def test_warmup_idempotent(self):
        s1 = jit_tier.warmup()
        s2 = jit_tier.warmup()
        assert s1 >= 0.0 and s2 == 0.0
        assert jit_tier.jit_status()["warmed"]

    def test_session_records_warmup(self):
        with repro.Session(PBConfig(**JIT_PB)) as s:
            assert s.stats.jit_warmup_s >= 0.0
            assert "jit_warmup_s" in s.stats.to_dict()

    def test_session_without_jit_skips_warmup(self):
        with repro.Session(PBConfig()) as s:
            assert s.stats.jit_warmup_s == 0.0

    def test_detailed_run_has_phase_stopwatch(self):
        a, b = _mats(scale=8)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", JITFallbackWarning)
            res = pb_spgemm_detailed(a.to_csc(), b, config=PBConfig(**JIT_PB))
        assert "jit_warmup_s" in res.phase_seconds
        assert res.phase_seconds["jit_warmup_s"] >= 0.0
        res0 = pb_spgemm_detailed(a.to_csc(), b, config=PBConfig())
        assert "jit_warmup_s" not in res0.phase_seconds


# ---------------------------------------------------------------------------
# config surface
# ---------------------------------------------------------------------------

class TestConfig:
    def test_backend_validation(self):
        with pytest.raises(ConfigError):
            PBConfig(sort_backend="radixjit")
        with pytest.raises(ConfigError):
            PBConfig(distribute_backend="jit")
        with pytest.raises(ConfigError):
            PBConfig(compress_backend="compiled")
        with pytest.raises(ConfigError):
            PBConfig(column_backend="jit_panel")

    def test_uses_jit_property(self):
        assert not PBConfig().uses_jit
        assert PBConfig(sort_backend="radix_jit").uses_jit
        assert PBConfig(distribute_backend="counting_jit").uses_jit
        assert PBConfig(compress_backend="jit").uses_jit
        assert PBConfig(column_backend="panel_jit").uses_jit

    def test_dispatch_metadata_flags(self):
        from repro.kernels.dispatch import algorithm_metadata

        meta = algorithm_metadata()
        for name in ("pb", "heap", "hash", "hashvec", "spa"):
            assert meta[name]["supports_jit"]
        assert not meta["esc_column"]["supports_jit"]
        for name in ("heap", "hash", "hashvec", "spa"):
            assert "panel_jit" in meta[name]["column_backends"]


# ---------------------------------------------------------------------------
# planner pricing
# ---------------------------------------------------------------------------

class TestPlannerPricing:
    def test_profile_schema_v4_roundtrip(self):
        from repro.planner.calibrate import (
            PROFILE_SCHEMA_VERSION,
            MachineProfile,
            default_profile,
        )

        assert PROFILE_SCHEMA_VERSION == 4
        prof = default_profile()
        assert prof.jit_scatter_mtuples_s == 0.0
        assert prof.jit_sort_scale() is None
        again = MachineProfile.from_dict(json.loads(json.dumps(prof.to_dict())))
        assert again == prof

    def test_v3_profile_migrates_one_shot(self):
        from repro.planner.calibrate import (
            PROFILE_SCHEMA_VERSION,
            MachineProfile,
            default_profile,
        )

        d = default_profile().to_dict()
        d.pop("jit_scatter_mtuples_s")
        d["schema_version"] = 3
        prof = MachineProfile.from_dict(d)
        assert prof.schema_version == PROFILE_SCHEMA_VERSION
        assert prof.jit_scatter_mtuples_s == 0.0
        d["schema_version"] = 2
        with pytest.raises(ValueError):
            MachineProfile.from_dict(d)

    def test_jit_sort_scale_ratio(self):
        from repro.planner.calibrate import default_profile

        prof = default_profile()
        fast = prof.to_dict()
        fast["jit_scatter_mtuples_s"] = prof.radix_mtuples_s * 2.0
        from repro.planner.calibrate import MachineProfile

        assert MachineProfile.from_dict(fast).jit_sort_scale() == pytest.approx(0.5)

    def test_rank_prices_jit_only_when_measured(self):
        """A calibrated jit rate + live engine ⇒ jit overrides; an
        unmeasured rate ⇒ the tier is never selected."""
        from repro.planner.calibrate import MachineProfile, default_profile
        from repro.planner.cost import rank
        from repro.planner.sketch import deepen, sketch

        a, _ = _mats(scale=10, ef=8)
        a_csc, b_csr = a.to_csc(), a
        sk = deepen(sketch(a_csc, b_csr), a_csc, b_csr)

        base = default_profile()
        scored = rank(a_csc, b_csr, sk, base)
        for c in scored:
            assert "sort_backend" not in c.overrides
            assert c.overrides.get("column_backend") != "panel_jit"

        if not jit_tier.jit_available():
            pytest.skip("no JIT engine on this machine")
        d = base.to_dict()
        d["jit_scatter_mtuples_s"] = base.radix_mtuples_s * 2.0  # 2x faster
        fast = MachineProfile.from_dict(d)
        scored = rank(a_csc, b_csr, sk, fast)
        pb = next(c for c in scored if c.algorithm == "pb")
        assert pb.overrides.get("sort_backend") == "radix_jit"
        assert pb.overrides.get("distribute_backend") == "counting_jit"
        col = next(c for c in scored if c.algorithm == "hash")
        assert col.overrides.get("column_backend") == "panel_jit"

    def test_resolved_config_applies_backend_overrides(self):
        from repro.planner.plan import _resolved_config

        cfg = _resolved_config(
            None,
            {
                "nbins": 64,
                "sort_backend": "radix_jit",
                "distribute_backend": "counting_jit",
                "column_backend": "panel_jit",
                "not_a_knob": 1,
            },
        )
        assert cfg.nbins == 64
        assert cfg.sort_backend == "radix_jit"
        assert cfg.distribute_backend == "counting_jit"
        assert cfg.column_backend == "panel_jit"

    def test_calibrate_measures_jit_rate(self):
        from repro.planner.calibrate import calibrate

        prof = calibrate(quick=True, measure_pool=False)
        if jit_tier.jit_available():
            assert prof.jit_scatter_mtuples_s > 0.0
            assert prof.jit_sort_scale() is not None
        else:
            assert prof.jit_scatter_mtuples_s == 0.0


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------

class TestCLI:
    def test_machine_json_reports_probe(self, capsys):
        from repro.cli import main

        assert main(["machine", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert "jit" in out
        assert set(out["jit"]) >= {"engine", "available", "warmed"}
        assert out["jit"]["available"] == (out["jit"]["engine"] not in (None, "none"))

    def test_machine_plain_still_has_subcommands(self, capsys):
        from repro.cli import main

        assert main(["machine"]) == 0
        assert "jit" in capsys.readouterr().out
        assert main(["machine", "stream"]) == 0

    def test_multiply_jit_flags(self, tmp_path, capsys):
        from repro.cli import main
        from repro.matrix.io import write_matrix_market

        a, _ = _mats(scale=7, ef=4)
        path = tmp_path / "a.mtx"
        write_matrix_market(a, path)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", JITFallbackWarning)
            rc = main(
                [
                    "matrix",
                    "multiply",
                    str(path),
                    "--algorithm",
                    "pb",
                    "--sort-backend",
                    "radix_jit",
                    "--distribute-backend",
                    "counting_jit",
                    "--compress-backend",
                    "jit",
                ]
            )
        assert rc == 0
        assert "C = A*B" in capsys.readouterr().out
