"""Tests for the ESC primitives: expand, radix sort, compress."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels.compress import compress_keyed, compress_sorted
from repro.kernels.outer_expand import (
    expand_arena,
    expand_chunks,
    expand_column_major,
    expand_outer,
)
from repro.kernels.radix import (
    counting_passes,
    passes_for_bits,
    radix_argsort,
    radix_sort_keys,
    radix_sort_pairs,
    sort_tuples,
)
from repro.matrix import CSCMatrix, CSRMatrix

from tests.util import random_coo


def dense_tuple_multiset(a_csc, b_csr):
    """All (row, col, val) products via dense loops — the expand oracle."""
    da, db = a_csc.to_dense(), b_csr.to_dense()
    out = []
    for k in range(a_csc.shape[1]):
        for i in np.nonzero(da[:, k])[0]:
            for j in np.nonzero(db[k, :])[0]:
                out.append((i, j, da[i, k] * db[k, j]))
    return sorted(out)


class TestExpand:
    def test_matches_dense_multiset(self, rng):
        a = random_coo(rng, 12, 10, 30).to_csc()
        b = random_coo(rng, 10, 14, 30).to_csr()
        rows, cols, vals = expand_outer(a, b)
        got = sorted(zip(rows.tolist(), cols.tolist(), vals.tolist()))
        expected = dense_tuple_multiset(a, b)
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert g[0] == e[0] and g[1] == e[1]
            assert g[2] == pytest.approx(e[2])

    def test_tuple_count_is_flop(self, small_pair):
        from repro.matrix.stats import total_flops

        a, b = small_pair
        rows, _, _ = expand_outer(a, b)
        assert len(rows) == total_flops(a, b)

    def test_outer_order_grouped_by_k(self, rng):
        # Tuples from outer product k appear contiguously, k ascending.
        a = random_coo(rng, 8, 6, 15).to_csc()
        b = random_coo(rng, 6, 9, 15).to_csr()
        per_k = a.col_nnz() * b.row_nnz()
        rows, cols, _ = expand_outer(a, b)
        pos = 0
        for k in range(6):
            cnt = int(per_k[k])
            seg_rows = set(rows[pos : pos + cnt].tolist())
            assert seg_rows <= set(a.col(k)[0].tolist())
            pos += cnt

    def test_empty_operands(self):
        rows, cols, vals = expand_outer(CSCMatrix.empty((5, 4)), CSRMatrix.empty((4, 6)))
        assert len(rows) == len(cols) == len(vals) == 0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            expand_outer(CSCMatrix.empty((5, 4)), CSRMatrix.empty((5, 6)))

    def test_chunks_concatenate_to_full(self, small_pair):
        a, b = small_pair
        full = expand_outer(a, b)
        parts = list(expand_chunks(a, b, chunk_flops=500))
        assert len(parts) > 1
        rows = np.concatenate([p[0] for p in parts])
        cols = np.concatenate([p[1] for p in parts])
        vals = np.concatenate([p[2] for p in parts])
        np.testing.assert_array_equal(rows, full[0])
        np.testing.assert_array_equal(cols, full[1])
        np.testing.assert_allclose(vals, full[2])

    def test_chunks_respect_budget_loosely(self, small_pair):
        a, b = small_pair
        budget = 1000
        max_per_k = int((a.col_nnz() * b.row_nnz()).max())
        for rows, _, _ in expand_chunks(a, b, chunk_flops=budget):
            assert len(rows) <= budget + max_per_k

    def test_chunks_without_values(self, small_pair):
        a, b = small_pair
        for rows, cols, vals in expand_chunks(a, b, chunk_flops=1000, with_values=False):
            assert vals is None
            assert len(rows) == len(cols)

    def test_chunks_invalid_budget(self, small_pair):
        a, b = small_pair
        with pytest.raises(ValueError):
            list(expand_chunks(a, b, chunk_flops=0))

    def test_column_major_same_multiset(self, rng):
        a = random_coo(rng, 10, 8, 25).to_csc()
        b = random_coo(rng, 8, 12, 25).to_csr()
        r1, c1, v1 = expand_outer(a, b)
        r2, c2, v2 = expand_column_major(a, b)
        k1 = sorted(zip(r1.tolist(), c1.tolist(), np.round(v1, 9).tolist()))
        k2 = sorted(zip(r2.tolist(), c2.tolist(), np.round(v2, 9).tolist()))
        assert k1 == k2

    def test_column_major_grouped_by_output_column(self, rng):
        a = random_coo(rng, 10, 8, 25).to_csc()
        b = random_coo(rng, 8, 12, 25).to_csr()
        _, cols, _ = expand_column_major(a, b)
        assert np.all(np.diff(cols) >= 0)

    def test_semiring_multiply_used(self, small_pair):
        a, b = small_pair
        _, _, v_pair = expand_outer(a, b, semiring="plus_pair")
        assert np.all(v_pair == 1.0)


class TestRadixSort:
    def test_passes_for_bits(self):
        assert passes_for_bits(0) == 0
        assert passes_for_bits(1) == 1
        assert passes_for_bits(8) == 1
        assert passes_for_bits(9) == 2
        assert passes_for_bits(32) == 4
        assert passes_for_bits(64) == 8

    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint32, np.uint64])
    def test_sorts_random(self, rng, dtype):
        keys = rng.integers(0, np.iinfo(dtype).max, size=500, dtype=dtype)
        out, passes = radix_sort_keys(keys)
        np.testing.assert_array_equal(out, np.sort(keys))
        assert passes == keys.dtype.itemsize

    def test_key_bits_reduce_passes(self, rng):
        keys = rng.integers(0, 1 << 20, size=300, dtype=np.uint64)
        out, passes = radix_sort_keys(keys, key_bits=20)
        np.testing.assert_array_equal(out, np.sort(keys))
        assert passes == 3

    def test_stability(self):
        keys = np.array([3, 1, 3, 1, 2], dtype=np.uint32)
        order, _ = radix_argsort(keys)
        # Equal keys keep original relative order.
        assert order.tolist() == [1, 3, 4, 0, 2]

    def test_empty_and_single(self):
        order, _ = radix_argsort(np.array([], dtype=np.uint32))
        assert len(order) == 0
        order, _ = radix_argsort(np.array([7], dtype=np.uint32))
        assert order.tolist() == [0]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            radix_argsort(np.array([1.5]))
        with pytest.raises(ValueError):
            radix_argsort(np.zeros((2, 2), dtype=np.uint32))

    def test_sort_tuples_carries_payloads(self, rng):
        keys = rng.integers(0, 100, size=200, dtype=np.uint32)
        vals = rng.normal(size=200)
        sk, sv, _ = sort_tuples(keys, vals)
        order = np.argsort(keys, kind="stable")
        np.testing.assert_array_equal(sk, keys[order])
        np.testing.assert_allclose(sv, vals[order])

    def test_sort_tuples_mergesort_backend(self, rng):
        keys = rng.integers(0, 100, size=50, dtype=np.uint32)
        vals = rng.normal(size=50)
        sk, sv, passes = sort_tuples(keys, vals, backend="mergesort")
        assert passes == 0
        np.testing.assert_array_equal(sk, np.sort(keys))

    def test_sort_tuples_bad_backend(self):
        with pytest.raises(ValueError):
            sort_tuples(np.array([1], dtype=np.uint32), np.array([1.0]), backend="quick")

    def test_sort_tuples_length_mismatch(self):
        with pytest.raises(ValueError):
            sort_tuples(np.array([1, 2], dtype=np.uint32), np.array([1.0]))


class TestCountingScatter:
    """The counting-scatter hot path and its degenerate bins."""

    def test_counting_passes(self):
        assert counting_passes(0) == 0
        assert counting_passes(16) == 1
        assert counting_passes(17) == 2
        assert counting_passes(32) == 2
        assert counting_passes(22, digit_bits=8) == 3
        assert counting_passes(64) == 4

    def test_empty_bin(self):
        sk, sv, passes = radix_sort_pairs(
            np.array([], dtype=np.uint32), np.array([], dtype=np.float64), key_bits=22
        )
        assert len(sk) == 0 and len(sv) == 0
        assert passes == 3  # byte-pass accounting is size-independent

    def test_single_tuple_bin(self):
        sk, sv, _ = radix_sort_pairs(
            np.array([41], dtype=np.uint32), np.array([2.5]), key_bits=22
        )
        assert sk.tolist() == [41] and sv.tolist() == [2.5]

    def test_all_equal_keys_preserve_payload_order(self, rng):
        keys = np.full(257, 9, dtype=np.uint32)
        vals = rng.normal(size=257)
        sk, sv, _ = radix_sort_pairs(keys, vals, key_bits=22)
        np.testing.assert_array_equal(sk, keys)
        np.testing.assert_allclose(sv, vals)  # stability: untouched order

    def test_17_bit_keys_three_byte_passes(self, rng):
        # key_bits not a multiple of 8: 17 bits → 3 byte passes charged,
        # 2 counting passes performed (16 + a 1-bit uint8 tail digit).
        keys = rng.integers(0, 1 << 17, size=400, dtype=np.uint32)
        vals = rng.normal(size=400)
        sk, sv, passes = radix_sort_pairs(keys, vals, key_bits=17)
        assert passes == passes_for_bits(17) == 3
        assert counting_passes(17) == 2
        order = np.argsort(keys, kind="stable")
        np.testing.assert_array_equal(sk, keys[order])
        np.testing.assert_allclose(sv, vals[order])

    @pytest.mark.parametrize("backend", ["radix", "argsort", "mergesort"])
    def test_backends_bit_identical(self, rng, backend):
        keys = rng.integers(0, 1 << 22, size=1000, dtype=np.uint32)
        vals = rng.normal(size=1000)
        ref_o = np.argsort(keys, kind="stable")
        sk, sv, _ = sort_tuples(keys, vals, key_bits=22, backend=backend)
        np.testing.assert_array_equal(sk, keys[ref_o])
        # Bit-identical, not approximately equal: the same stable
        # permutation must come out of every backend.
        assert np.array_equal(sv, vals[ref_o])

    def test_duplicate_heavy_keys_stable(self, rng):
        keys = rng.integers(0, 7, size=800, dtype=np.uint32)
        payload = np.arange(800, dtype=np.int64)
        _, sp, _ = radix_sort_pairs(keys, payload, key_bits=3)
        ref = np.argsort(keys, kind="stable")
        np.testing.assert_array_equal(sp, ref)

    def test_input_arrays_not_mutated(self, rng):
        keys = rng.integers(0, 1 << 22, size=300, dtype=np.uint32)
        vals = rng.normal(size=300)
        keys_copy, vals_copy = keys.copy(), vals.copy()
        radix_sort_pairs(keys, vals, key_bits=22)
        np.testing.assert_array_equal(keys, keys_copy)
        np.testing.assert_array_equal(vals, vals_copy)

    def test_normalizes_once_no_upcast(self, rng):
        # 22-bit keys handed over as int64 come back uint32: one cast up
        # front, no per-pass casting churn and no signed upcasts.
        keys = rng.integers(0, 1 << 22, size=100, dtype=np.int64)
        sk, _, _ = radix_sort_pairs(keys, np.ones(100), key_bits=22)
        assert sk.dtype == np.uint32
        sk16, _, _ = radix_sort_pairs(
            rng.integers(0, 1 << 9, size=50, dtype=np.int32), np.ones(50), key_bits=9
        )
        assert sk16.dtype == np.uint16

    def test_digit_bits_8(self, rng):
        keys = rng.integers(0, 1 << 22, size=500, dtype=np.uint32)
        vals = rng.normal(size=500)
        sk, sv, _ = radix_sort_pairs(keys, vals, key_bits=22, digit_bits=8)
        order = np.argsort(keys, kind="stable")
        np.testing.assert_array_equal(sk, keys[order])
        assert np.array_equal(sv, vals[order])

    def test_rejects_bad_digit_bits(self):
        with pytest.raises(ValueError):
            radix_sort_pairs(
                np.array([1], dtype=np.uint32), np.array([1.0]), digit_bits=12
            )

    def test_arena_matches_chunk_concat(self, small_pair):
        a, b = small_pair
        rows, cols, vals = expand_arena(a, b, chunk_flops=500)
        full = expand_outer(a, b)
        np.testing.assert_array_equal(rows, full[0])
        np.testing.assert_array_equal(cols, full[1])
        assert np.array_equal(vals, full[2])  # bit-identical, same chunks

    def test_arena_empty_operands(self):
        rows, cols, vals = expand_arena(CSCMatrix.empty((5, 4)), CSRMatrix.empty((4, 6)))
        assert len(rows) == len(cols) == len(vals) == 0


class TestCompress:
    def test_merges_runs(self):
        keys = np.array([1, 1, 2, 5, 5, 5], dtype=np.uint32)
        vals = np.array([1.0, 2.0, 3.0, 1.0, 1.0, 1.0])
        ck, cv = compress_keyed(keys, vals)
        assert ck.tolist() == [1, 2, 5]
        np.testing.assert_allclose(cv, [3.0, 3.0, 3.0])

    def test_requires_sorted(self):
        with pytest.raises(ValueError):
            compress_keyed(np.array([2, 1], dtype=np.uint32), np.array([1.0, 1.0]))

    def test_empty(self):
        ck, cv = compress_keyed(np.array([], dtype=np.uint32), np.array([]))
        assert len(ck) == 0 and len(cv) == 0

    def test_no_duplicates_identity(self, rng):
        keys = np.sort(rng.choice(1000, size=50, replace=False)).astype(np.uint32)
        vals = rng.normal(size=50)
        ck, cv = compress_keyed(keys, vals)
        np.testing.assert_array_equal(ck, keys)
        np.testing.assert_allclose(cv, vals)

    def test_matches_dict_accumulation(self, rng):
        keys = np.sort(rng.integers(0, 30, size=200)).astype(np.uint64)
        vals = rng.normal(size=200)
        ck, cv = compress_keyed(keys, vals)
        expected = {}
        for k, v in zip(keys.tolist(), vals.tolist()):
            expected[k] = expected.get(k, 0.0) + v
        assert ck.tolist() == sorted(expected)
        np.testing.assert_allclose(cv, [expected[k] for k in sorted(expected)])

    def test_min_plus_semiring(self):
        keys = np.array([1, 1, 2], dtype=np.uint32)
        vals = np.array([5.0, 3.0, 9.0])
        _, cv = compress_keyed(keys, vals, semiring="min_plus")
        np.testing.assert_allclose(cv, [3.0, 9.0])

    def test_compress_sorted_rowcol(self, rng):
        rows = np.array([0, 0, 0, 1, 1])
        cols = np.array([1, 1, 2, 0, 0])
        vals = np.array([1.0, 1.0, 5.0, 2.0, 3.0])
        cr, cc, cv = compress_sorted(rows, cols, vals)
        assert cr.tolist() == [0, 0, 1]
        assert cc.tolist() == [1, 2, 0]
        np.testing.assert_allclose(cv, [2.0, 5.0, 5.0])

    def test_compress_sorted_rejects_unsorted(self):
        with pytest.raises(ValueError):
            compress_sorted(
                np.array([1, 0]), np.array([0, 0]), np.array([1.0, 1.0])
            )

    def test_compress_sorted_length_mismatch(self):
        with pytest.raises(ValueError):
            compress_sorted(np.array([0]), np.array([0, 1]), np.array([1.0]))
