"""Integration tests: every SpGEMM kernel against two oracles.

The full cross-product of {algorithm} × {workload shape} is the heart
of the suite: all kernels must agree with scipy (independent C
implementation) and the dense semiring reference.
"""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.generators import banded, bipartite_blocks, diagonal, erdos_renyi, rmat
from repro.kernels import (
    available_algorithms,
    dense_spgemm_reference,
    get_algorithm,
    scipy_spgemm_oracle,
    spgemm,
)
from repro.matrix import CSCMatrix, CSRMatrix
from repro.matrix.ops import allclose

from tests.util import random_coo

ALGS = sorted(available_algorithms())


def _pairs(rng):
    er_a = erdos_renyi(150, 5, seed=1)
    er_b = erdos_renyi(150, 5, seed=2)
    rm = rmat(7, 6, seed=3)
    rect_a, rect_b = bipartite_blocks(40, 70, 55, 0.08, seed=4)
    dense_a = random_coo(rng, 25, 25, 350, duplicates=True).to_csr()
    dense_b = random_coo(rng, 25, 25, 350, duplicates=True).to_csr()
    return {
        "er": (er_a.to_csc(), er_b),
        "rmat_square": (rm.to_csc(), rm),
        "rectangular": (rect_a.to_csc(), rect_b),
        "dense_ish": (dense_a.to_csc(), dense_b),
    }


@pytest.fixture(scope="module")
def workloads():
    return _pairs(np.random.default_rng(99))


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("name", ["er", "rmat_square", "rectangular", "dense_ish"])
def test_matches_scipy(alg, name, workloads):
    a, b = workloads[name]
    c = spgemm(a, b, algorithm=alg)
    assert allclose(c, scipy_spgemm_oracle(a, b))


@pytest.mark.parametrize("alg", ALGS)
def test_matches_dense_reference(alg, rng):
    a = random_coo(rng, 18, 14, 50).to_csc()
    b = random_coo(rng, 14, 21, 50).to_csr()
    c = spgemm(a, b, algorithm=alg)
    assert allclose(c, dense_spgemm_reference(a, b))


@pytest.mark.parametrize("alg", ALGS)
def test_empty_result(alg):
    a = CSCMatrix.empty((10, 8))
    b = CSRMatrix.empty((8, 12))
    c = spgemm(a, b, algorithm=alg)
    assert c.shape == (10, 12)
    assert c.nnz == 0


@pytest.mark.parametrize("alg", ALGS)
def test_disjoint_support_empty_product(alg):
    # A only uses k=0, B only k=1: no products at all.
    a = CSCMatrix((3, 2), [0, 3, 3], [0, 1, 2], [1.0, 1.0, 1.0])
    b = CSRMatrix((2, 3), [0, 0, 2], [0, 2], [1.0, 1.0])
    c = spgemm(a, b, algorithm=alg)
    assert c.nnz == 0


@pytest.mark.parametrize("alg", ALGS)
def test_identity_multiplication(alg, rng):
    m = random_coo(rng, 30, 30, 90).to_csr()
    e = CSCMatrix.identity(30)
    c = spgemm(e, m, algorithm=alg)
    assert allclose(c, m)


@pytest.mark.parametrize("alg", ALGS)
def test_diagonal_scaling(alg):
    d = diagonal([2.0, 3.0, 4.0]).to_csc()
    m = banded(3, 1)
    c = spgemm(d, m, algorithm=alg)
    np.testing.assert_allclose(c.to_dense(), np.diag([2.0, 3.0, 4.0]) @ m.to_dense())


@pytest.mark.parametrize("alg", ALGS)
def test_single_entry(alg):
    a = CSCMatrix((2, 2), [0, 1, 1], [1], [3.0])
    b = CSRMatrix((2, 2), [0, 1, 1], [0], [4.0])
    c = spgemm(a, b, algorithm=alg)
    dense = c.to_dense()
    assert dense[1, 0] == 12.0
    assert c.nnz == 1


@pytest.mark.parametrize("alg", ALGS)
def test_output_canonical(alg, rng):
    a = random_coo(rng, 40, 35, 150).to_csc()
    b = random_coo(rng, 35, 45, 150).to_csr()
    c = spgemm(a, b, algorithm=alg)
    c._validate()  # sorted, deduplicated, consistent pointers


@pytest.mark.parametrize("alg", ALGS)
def test_numeric_cancellation_kept_structurally(alg):
    # (1)(1) + (1)(-1) = 0 stays as an explicit zero, like scipy.
    a = CSCMatrix((1, 2), [0, 1, 2], [0, 0], [1.0, 1.0])
    b = CSRMatrix((2, 1), [0, 1, 2], [0, 0], [1.0, -1.0])
    c = spgemm(a, b, algorithm=alg)
    assert allclose(c, scipy_spgemm_oracle(a, b))


@pytest.mark.parametrize("alg", ALGS)
def test_shape_mismatch_raises(alg):
    with pytest.raises(ShapeError):
        spgemm(CSCMatrix.empty((3, 4)), CSRMatrix.empty((5, 3)), algorithm=alg)


@pytest.mark.parametrize("alg", ALGS)
def test_hypersparse(alg):
    # 1000x1000 with 5 entries: mostly-empty rows/columns everywhere.
    rng = np.random.default_rng(0)
    a = random_coo(rng, 1000, 1000, 5).to_csc()
    b = random_coo(rng, 1000, 1000, 5).to_csr()
    c = spgemm(a, b, algorithm=alg)
    assert allclose(c, scipy_spgemm_oracle(a, b))


@pytest.mark.parametrize("alg", ALGS)
def test_tall_skinny_output(alg):
    from repro.generators import tall_skinny

    a = erdos_renyi(120, 5, seed=6)
    b = tall_skinny(120, 4, 10, seed=7)
    c = spgemm(a.to_csc(), b, algorithm=alg)
    assert c.shape == (120, 4)
    assert allclose(c, scipy_spgemm_oracle(a.to_csc(), b))


class TestSemiringSpGEMM:
    @pytest.mark.parametrize("alg", ALGS)
    def test_plus_pair_counts_matches(self, alg, rng):
        a = random_coo(rng, 20, 20, 60).to_csc()
        b = random_coo(rng, 20, 20, 60).to_csr()
        c = spgemm(a, b, algorithm=alg, semiring="plus_pair")
        # plus_pair == structural product of patterns
        pa = (a.to_dense() != 0).astype(float)
        pb = (b.to_dense() != 0).astype(float)
        expected = pa @ pb
        got = c.to_dense()
        np.testing.assert_allclose(got[expected != 0], expected[expected != 0])

    @pytest.mark.parametrize("alg", ["pb", "esc_column", "spa", "hash", "heap", "hashvec"])
    def test_min_plus_shortest_one_hop(self, alg):
        # min-plus square of a graph distance matrix = shortest 2-hop paths.
        inf = np.inf
        dense = np.array(
            [
                [0.0, 1.0, inf],
                [inf, 0.0, 2.0],
                [5.0, inf, 0.0],
            ]
        )
        rows, cols = np.nonzero(np.isfinite(dense))
        from repro.matrix import COOMatrix

        m = COOMatrix((3, 3), rows, cols, dense[rows, cols])
        c = spgemm(m.to_csc(), m.to_csr(), algorithm=alg, semiring="min_plus")
        got = c.to_dense()
        # path 0->1->2 costs 3
        assert got[0, 2] == 3.0

    @pytest.mark.parametrize("alg", ALGS)
    def test_or_and_reachability(self, alg):
        m = banded(6, 1)
        c = spgemm(m.to_csc(), m.to_csr(), algorithm=alg, semiring="or_and")
        vals = np.unique(c.data)
        assert set(vals.tolist()) <= {0.0, 1.0}


class TestDispatch:
    def test_available(self):
        assert set(ALGS) == {
            "esc_column", "hash", "hashvec", "heap", "pb", "sharded",
            "spa", "tiled",
        }

    def test_get_algorithm_metadata(self):
        info = get_algorithm("pb")
        assert info.input_access == "outer"
        assert info.output_formation == "esc"
        assert info.reads_a == "1"
        info = get_algorithm("heap")
        assert info.input_access == "column"
        assert info.reads_a == "d"

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError, match="available"):
            spgemm(CSCMatrix.empty((1, 1)), CSRMatrix.empty((1, 1)), algorithm="magic")

    def test_table1_classification(self):
        # Table I: column/accumulator, column/esc, outer/esc populated.
        from repro.kernels.dispatch import ALGORITHMS

        cells = {(i.input_access, i.output_formation) for i in ALGORITHMS.values()}
        assert ("column", "accumulator") in cells
        assert ("column", "esc") in cells
        assert ("outer", "esc") in cells
