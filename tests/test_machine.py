"""Tests for machine specs, STREAM model, cache simulator, NUMA model."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine import (
    Cache,
    CacheSpec,
    MachineSpec,
    MemoryHierarchy,
    NUMASpec,
    StreamTable,
    effective_bandwidth,
    get_machine,
    laptop_generic,
    numa_mix_bandwidth,
    numa_mix_latency,
    power9,
    random_access_bandwidth,
    remote_fraction_round_robin,
    simulate_stream,
    skylake_sp,
    stream_bandwidth,
)


class TestSpecs:
    def test_skylake_matches_table4(self):
        m = skylake_sp()
        assert m.sockets == 2
        assert m.cores_per_socket == 24
        assert m.clock_ghz == 2.1
        assert m.cache("L2").size_bytes == 1024 * 1024
        assert m.cache("L3").size_bytes == 33792 * 1024
        assert m.total_cores == 48

    def test_power9_matches_table4(self):
        m = power9()
        assert m.cores_per_socket == 20
        assert m.clock_ghz == 3.8
        assert m.cache("L2").shared_by == 2
        assert m.l2_per_core_bytes() == 256 * 1024

    def test_skylake_stream_matches_table5(self):
        m = skylake_sp()
        assert m.stream_single.copy == 47.40
        assert m.stream_single.triad == 57.04
        assert m.stream_dual.add == 107.00

    def test_skylake_numa_matches_table7(self):
        m = skylake_sp()
        assert m.numa.bandwidth[0][0] == 50.26
        assert m.numa.bandwidth[0][1] == 33.36
        assert m.numa.latency_ns[1][0] == 146.7

    def test_cache_spec_validation(self):
        with pytest.raises(MachineError):
            CacheSpec("L2", 0)
        with pytest.raises(MachineError):
            CacheSpec("L2", 1000, line_bytes=64)  # not a multiple
        with pytest.raises(MachineError):
            CacheSpec("L2", 64 * 10, line_bytes=64, associativity=3)

    def test_machine_validation(self):
        with pytest.raises(MachineError):
            MachineSpec(
                name="bad",
                sockets=0,
                cores_per_socket=1,
                clock_ghz=1.0,
                caches=(CacheSpec("L2", 64 * 1024),),
                stream_single=StreamTable(1, 1, 1, 1),
                stream_dual=StreamTable(1, 1, 1, 1),
                numa=NUMASpec(((1.0,),), ((1.0,),)),
                per_core_bandwidth_gbs=1.0,
                dram_latency_ns=100.0,
            )

    def test_numa_validation(self):
        with pytest.raises(MachineError):
            NUMASpec(((1.0, 2.0),), ((1.0,),))

    def test_unknown_cache_level(self):
        with pytest.raises(MachineError):
            skylake_sp().cache("L9")

    def test_get_machine(self):
        assert get_machine("skylake").name == skylake_sp().name
        with pytest.raises(KeyError):
            get_machine("cray")

    def test_thread_placement(self):
        m = skylake_sp()
        assert m.socket_of_thread(0) == 0
        assert m.socket_of_thread(23) == 0
        assert m.socket_of_thread(24) == 1

    def test_stream_table_lookup(self):
        t = StreamTable(1.0, 2.0, 3.0, 4.0)
        assert t.kernel("add") == 3.0
        assert t.best == 4.0
        with pytest.raises(MachineError):
            t.kernel("fma")


class TestStreamModel:
    def test_saturated_reproduces_table5(self):
        m = skylake_sp()
        assert stream_bandwidth(m, "triad", 1) == 57.04
        assert stream_bandwidth(m, "copy", 2) == 97.73

    def test_single_thread_limited_by_core(self):
        m = skylake_sp()
        assert stream_bandwidth(m, "triad", 1, nthreads=1) == m.per_core_bandwidth_gbs

    def test_monotone_in_threads(self):
        m = skylake_sp()
        bws = [stream_bandwidth(m, "triad", 1, nthreads=t) for t in range(1, 25)]
        assert all(b2 >= b1 for b1, b2 in zip(bws, bws[1:]))
        assert bws[-1] == 57.04

    def test_invalid_args(self):
        m = skylake_sp()
        with pytest.raises(MachineError):
            stream_bandwidth(m, "triad", 3)
        with pytest.raises(MachineError):
            stream_bandwidth(m, "triad", 1, nthreads=0)

    def test_simulate_stream_times(self):
        m = skylake_sp()
        r = simulate_stream(m, 1 << 30, "triad", 1)
        assert r["bytes_moved"] == 3 * (1 << 30)
        assert r["gbs"] == pytest.approx(57.04)
        with pytest.raises(MachineError):
            simulate_stream(m, 0)
        with pytest.raises(MachineError):
            simulate_stream(m, 1024, "fma")

    def test_effective_bandwidth_numa_penalty(self):
        m = skylake_sp()
        full = effective_bandwidth(m, 24, 1, "triad", remote_fraction=0.0)
        half = effective_bandwidth(m, 24, 1, "triad", remote_fraction=0.5)
        assert half < full
        all_remote = effective_bandwidth(m, 24, 1, "triad", remote_fraction=1.0)
        assert all_remote < half

    def test_random_access_penalized_by_line_waste(self):
        m = skylake_sp()
        wasteful = random_access_bandwidth(m, 24, useful_bytes=8.0)
        efficient = random_access_bandwidth(m, 24, useful_bytes=64.0)
        assert wasteful < efficient

    def test_random_access_latency_bound_single_thread(self):
        m = skylake_sp()
        bw1 = random_access_bandwidth(m, 1, useful_bytes=64.0)
        bw24 = random_access_bandwidth(m, 24, useful_bytes=64.0)
        assert bw24 > bw1
        with pytest.raises(MachineError):
            random_access_bandwidth(m, 1, useful_bytes=0)


class TestCacheSimulator:
    def _small_cache(self, size=1024, line=64, assoc=2):
        return Cache(CacheSpec("L1", size, line, assoc))

    def test_cold_misses(self):
        c = self._small_cache()
        hits = c.access(np.arange(0, 512, 64))
        assert not hits.any()
        assert c.stats.misses == 8

    def test_repeat_hits(self):
        c = self._small_cache()
        addrs = np.arange(0, 512, 64)
        c.access(addrs)
        hits = c.access(addrs)
        assert hits.all()
        assert c.stats.hit_rate == 0.5

    def test_streaming_misses_once_per_line(self):
        c = self._small_cache()
        c.access(np.arange(0, 4096, 8))  # 512 sequential 8-byte reads
        assert c.stats.misses == 4096 // 64

    def test_capacity_eviction(self):
        c = self._small_cache(size=256, line=64, assoc=2)  # 4 lines, 2 sets
        # Touch 3 lines mapping to the same set (stride = n_sets * line).
        stride = c.n_sets * 64
        for a in (0, stride, 2 * stride):
            c.access_line(a // 64)
        assert not c.access_line(0)  # evicted by LRU
        assert c.stats.evictions >= 1

    def test_lru_order(self):
        c = self._small_cache(size=256, line=64, assoc=2)
        stride = c.n_sets
        c.access_line(0)
        c.access_line(stride)
        c.access_line(0)  # refresh
        c.access_line(2 * stride)  # evicts `stride`, not 0
        assert c.access_line(0)
        assert not c.access_line(stride)

    def test_straddling_access(self):
        c = self._small_cache()
        hits = c.access(np.array([60]), size_bytes=8)  # spans two lines
        assert c.stats.accesses == 2
        assert not hits[0]

    def test_reset(self):
        c = self._small_cache()
        c.access(np.array([0]))
        c.reset()
        assert c.stats.accesses == 0
        assert c.resident_lines() == 0

    def test_invalid_size(self):
        c = self._small_cache()
        with pytest.raises(MachineError):
            c.access(np.array([0]), size_bytes=0)


class TestHierarchy:
    def test_l2_hit_after_first_touch(self):
        h = MemoryHierarchy(laptop_generic())
        h.access(np.arange(0, 1024, 8))
        first_dram = h.stats.dram_lines
        h.access(np.arange(0, 1024, 8))
        assert h.stats.dram_lines == first_dram  # second pass in-cache

    def test_dram_traffic_counts_lines(self):
        h = MemoryHierarchy(laptop_generic())
        h.access(np.arange(0, 64 * 100, 64))
        assert h.dram_traffic_bytes() == 64 * 100

    def test_modelled_time_positive(self):
        h = MemoryHierarchy(laptop_generic())
        h.access(np.arange(0, 64 * 100, 64))
        assert h.modelled_time_seconds() > 0
        assert h.modelled_time_seconds(streamed_fraction=0.0) > h.modelled_time_seconds()

    def test_reset(self):
        h = MemoryHierarchy(laptop_generic())
        h.access(np.array([0]))
        h.reset()
        assert h.stats.accesses == 0


class TestNUMA:
    def test_remote_fraction(self):
        assert remote_fraction_round_robin(1) == 0.0
        assert remote_fraction_round_robin(2) == 0.5
        with pytest.raises(MachineError):
            remote_fraction_round_robin(0)

    def test_mix_bandwidth_bounds(self):
        m = skylake_sp()
        assert numa_mix_bandwidth(m, 0.0) == m.numa.local_bandwidth()
        assert numa_mix_bandwidth(m, 1.0) == pytest.approx(m.numa.remote_bandwidth())
        mid = numa_mix_bandwidth(m, 0.5)
        assert m.numa.remote_bandwidth() < mid < m.numa.local_bandwidth()

    def test_mix_latency(self):
        m = skylake_sp()
        assert numa_mix_latency(m, 0.0) == 88.1
        assert numa_mix_latency(m, 1.0) == pytest.approx(147.4)

    def test_invalid_fraction(self):
        m = skylake_sp()
        with pytest.raises(MachineError):
            numa_mix_bandwidth(m, 1.5)
        with pytest.raises(MachineError):
            numa_mix_latency(m, -0.1)

    def test_single_socket_machine_no_penalty(self):
        m = laptop_generic()
        assert numa_mix_bandwidth(m, 0.9) == m.numa.local_bandwidth()
