"""Tests for masked SpGEMM."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.generators import erdos_renyi
from repro.kernels import masked_spgemm, scipy_spgemm_oracle
from repro.matrix import CSCMatrix, CSRMatrix
from repro.matrix.ops import tril, triu

from tests.util import random_coo


def _restrict(full: CSRMatrix, mask: CSRMatrix, complement=False) -> np.ndarray:
    fd, md = full.to_dense(), mask.to_dense() != 0
    if complement:
        md = ~md
    return np.where(md, fd, 0.0)


class TestMaskedSpGEMM:
    def test_equals_restricted_product(self, rng):
        a = random_coo(rng, 40, 30, 150).to_csc()
        b = random_coo(rng, 30, 45, 150).to_csr()
        mask = random_coo(rng, 40, 45, 120).to_csr()
        got = masked_spgemm(a, b, mask)
        full = scipy_spgemm_oracle(a, b)
        np.testing.assert_allclose(got.to_dense(), _restrict(full, mask), atol=1e-12)

    def test_complement(self, rng):
        a = random_coo(rng, 25, 25, 100).to_csc()
        b = random_coo(rng, 25, 25, 100).to_csr()
        mask = random_coo(rng, 25, 25, 80).to_csr()
        got = masked_spgemm(a, b, mask, complement=True)
        full = scipy_spgemm_oracle(a, b)
        np.testing.assert_allclose(
            got.to_dense(), _restrict(full, mask, complement=True), atol=1e-12
        )

    def test_mask_and_complement_partition(self, rng):
        a = random_coo(rng, 20, 20, 80).to_csc()
        b = random_coo(rng, 20, 20, 80).to_csr()
        mask = random_coo(rng, 20, 20, 60).to_csr()
        on = masked_spgemm(a, b, mask)
        off = masked_spgemm(a, b, mask, complement=True)
        full = scipy_spgemm_oracle(a, b)
        np.testing.assert_allclose(
            on.to_dense() + off.to_dense(), full.to_dense(), atol=1e-12
        )

    def test_empty_mask_empty_output(self, rng):
        a = random_coo(rng, 10, 10, 40).to_csc()
        b = random_coo(rng, 10, 10, 40).to_csr()
        got = masked_spgemm(a, b, CSRMatrix.empty((10, 10)))
        assert got.nnz == 0

    def test_full_mask_is_unmasked(self, rng):
        a = random_coo(rng, 12, 12, 50).to_csc()
        b = random_coo(rng, 12, 12, 50).to_csr()
        dense_mask = CSRMatrix.from_dense(np.ones((12, 12)))
        got = masked_spgemm(a, b, dense_mask)
        from repro.matrix.ops import allclose

        assert allclose(got, scipy_spgemm_oracle(a, b))

    def test_triangle_mask_pattern(self):
        a = erdos_renyi(150, 5, seed=3)
        mask = tril(a, -1)
        got = masked_spgemm(tril(a, -1).to_csc(), triu(a, 1).to_csr(), mask, semiring="plus_pair")
        # Output support is a subset of the mask support.
        gm = got.to_dense() != 0
        mm = mask.to_dense() != 0
        assert np.all(~gm | mm)

    def test_shape_mismatch(self, rng):
        a = random_coo(rng, 5, 5, 10).to_csc()
        b = random_coo(rng, 5, 5, 10).to_csr()
        with pytest.raises(ShapeError):
            masked_spgemm(a, b, CSRMatrix.empty((4, 5)))
        with pytest.raises(ShapeError):
            masked_spgemm(a, CSRMatrix.empty((6, 5)), CSRMatrix.empty((5, 5)))

    def test_chunked(self, rng):
        a = random_coo(rng, 30, 30, 120).to_csc()
        b = random_coo(rng, 30, 30, 120).to_csr()
        mask = random_coo(rng, 30, 30, 90).to_csr()
        c1 = masked_spgemm(a, b, mask)
        c2 = masked_spgemm(a, b, mask, chunk_flops=32)
        np.testing.assert_allclose(c1.to_dense(), c2.to_dense())

    def test_semiring(self, rng):
        a = random_coo(rng, 15, 15, 60).to_csc()
        b = random_coo(rng, 15, 15, 60).to_csr()
        mask = random_coo(rng, 15, 15, 50).to_csr()
        got = masked_spgemm(a, b, mask, semiring="plus_pair")
        pa = (a.to_dense() != 0).astype(float)
        pb = (b.to_dense() != 0).astype(float)
        expected = np.where(mask.to_dense() != 0, pa @ pb, 0.0)
        np.testing.assert_allclose(got.to_dense(), expected)
