"""Unit tests for the COO matrix format."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.matrix import COOMatrix

from tests.util import random_coo


class TestConstruction:
    def test_basic(self):
        m = COOMatrix((3, 4), [0, 2], [1, 3], [1.0, 2.0])
        assert m.shape == (3, 4)
        assert m.nnz == 2

    def test_empty(self):
        m = COOMatrix.empty((5, 5))
        assert m.nnz == 0
        assert m.to_dense().sum() == 0

    def test_zero_dimensions(self):
        m = COOMatrix.empty((0, 0))
        assert m.nnz == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), [0, 1], [0], [1.0])
        with pytest.raises(FormatError):
            COOMatrix((3, 3), [0], [0], [1.0, 2.0])

    def test_out_of_range_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), [3], [0], [1.0])
        with pytest.raises(FormatError):
            COOMatrix((3, 3), [0], [-1], [1.0])

    def test_bad_shape_rejected(self):
        with pytest.raises(ShapeError):
            COOMatrix((-1, 3), [], [], [])
        with pytest.raises(ShapeError):
            COOMatrix("nope", [], [], [])

    def test_float_indices_coerced_when_integral(self):
        m = COOMatrix((3, 3), np.array([0.0, 2.0]), [0, 1], [1.0, 1.0])
        assert m.rows.dtype == np.int64

    def test_non_integral_indices_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), np.array([0.5]), [0], [1.0])


class TestCoalesce:
    def test_sums_duplicates(self):
        m = COOMatrix((2, 2), [0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0])
        c = m.coalesce()
        assert c.nnz == 2
        dense = c.to_dense()
        assert dense[0, 1] == 3.0
        assert dense[1, 0] == 5.0

    def test_last_wins_mode(self):
        m = COOMatrix((2, 2), [0, 0], [1, 1], [1.0, 2.0])
        c = m.coalesce(sum_duplicates=False)
        assert c.nnz == 1
        assert c.vals[0] == 2.0

    def test_sorted_row_major(self, rng):
        m = random_coo(rng, 20, 30, 100, duplicates=True)
        c = m.coalesce()
        keys = c.rows * 30 + c.cols
        assert np.all(np.diff(keys) > 0)

    def test_is_coalesced(self, rng):
        m = random_coo(rng, 20, 30, 100, duplicates=True)
        assert m.coalesce().is_coalesced()

    def test_preserves_dense_equivalent(self, rng):
        m = random_coo(rng, 15, 15, 80, duplicates=True)
        np.testing.assert_allclose(m.to_dense(), m.coalesce().to_dense())

    def test_empty(self):
        assert COOMatrix.empty((4, 4)).coalesce().nnz == 0

    def test_keeps_cancellation_zeros(self):
        m = COOMatrix((2, 2), [0, 0], [0, 0], [1.0, -1.0])
        c = m.coalesce()
        assert c.nnz == 1
        assert c.vals[0] == 0.0


class TestTranspose:
    def test_roundtrip(self, rng):
        m = random_coo(rng, 10, 25, 60)
        np.testing.assert_allclose(m.transpose().to_dense(), m.to_dense().T)

    def test_shape_swap(self):
        m = COOMatrix((3, 7), [0], [6], [1.0])
        assert m.transpose().shape == (7, 3)


class TestConversions:
    def test_to_dense_accumulates_duplicates(self):
        m = COOMatrix((2, 2), [0, 0], [0, 0], [2.0, 3.0])
        assert m.to_dense()[0, 0] == 5.0

    def test_memory_bytes(self):
        m = COOMatrix((4, 4), [0, 1], [1, 2], [1.0, 1.0])
        assert m.memory_bytes() == 2 * 16

    def test_copy_independent(self):
        m = COOMatrix((2, 2), [0], [0], [1.0])
        c = m.copy()
        c.vals[0] = 9.0
        assert m.vals[0] == 1.0

    def test_repr(self):
        assert "nnz=1" in repr(COOMatrix((2, 2), [0], [0], [1.0]))
