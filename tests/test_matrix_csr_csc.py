"""Unit tests for CSR/CSC formats and conversions."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.matrix import COOMatrix, CSCMatrix, CSRMatrix

from tests.util import random_coo


class TestCSRConstruction:
    def test_valid(self):
        m = CSRMatrix((2, 3), [0, 2, 3], [0, 2, 1], [1.0, 2.0, 3.0])
        assert m.nnz == 3
        assert m.row_nnz().tolist() == [2, 1]

    def test_empty(self):
        m = CSRMatrix.empty((4, 6))
        assert m.nnz == 0
        assert len(m.indptr) == 5

    def test_identity(self):
        e = CSRMatrix.identity(5)
        np.testing.assert_allclose(e.to_dense(), np.eye(5))

    def test_bad_indptr_length(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 3), [0, 1], [0], [1.0])

    def test_indptr_not_starting_at_zero(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 3), [1, 2, 3], [0, 1, 2], [1.0, 1.0, 1.0])

    def test_indptr_nnz_mismatch(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 3), [0, 1, 5], [0, 1], [1.0, 1.0])

    def test_decreasing_indptr(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 3), [0, 2, 1], [0, 1, 2][:1], [1.0])

    def test_unsorted_row_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix((1, 4), [0, 2], [3, 1], [1.0, 1.0])

    def test_duplicate_in_row_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix((1, 4), [0, 2], [1, 1], [1.0, 1.0])

    def test_index_out_of_range(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 3), [0, 1, 1], [3], [1.0])

    def test_row_access(self):
        m = CSRMatrix((2, 4), [0, 2, 3], [1, 3, 0], [5.0, 6.0, 7.0])
        idx, vals = m.row(0)
        assert idx.tolist() == [1, 3]
        assert vals.tolist() == [5.0, 6.0]
        with pytest.raises(ShapeError):
            m.row(2)

    def test_from_scipy_roundtrip(self, rng):
        coo = random_coo(rng, 12, 9, 40, duplicates=True)
        ours = coo.to_csr()
        theirs = CSRMatrix.from_scipy(ours.to_scipy())
        np.testing.assert_allclose(ours.to_dense(), theirs.to_dense())


class TestCSCConstruction:
    def test_valid(self):
        m = CSCMatrix((3, 2), [0, 2, 3], [0, 2, 1], [1.0, 2.0, 3.0])
        assert m.col_nnz().tolist() == [2, 1]

    def test_col_access(self):
        m = CSCMatrix((4, 2), [0, 2, 3], [1, 3, 0], [5.0, 6.0, 7.0])
        idx, vals = m.col(0)
        assert idx.tolist() == [1, 3]
        with pytest.raises(ShapeError):
            m.col(5)

    def test_unsorted_col_rejected(self):
        with pytest.raises(FormatError):
            CSCMatrix((4, 1), [0, 2], [3, 1], [1.0, 1.0])

    def test_identity(self):
        np.testing.assert_allclose(CSCMatrix.identity(4).to_dense(), np.eye(4))


class TestConversionRoundtrips:
    @pytest.mark.parametrize("m,n,nnz", [(10, 10, 30), (5, 20, 40), (20, 5, 40), (1, 1, 1), (7, 3, 0)])
    def test_coo_csr_coo(self, rng, m, n, nnz):
        coo = random_coo(rng, m, n, nnz, duplicates=True).coalesce()
        back = coo.to_csr().to_coo()
        np.testing.assert_allclose(back.to_dense(), coo.to_dense())

    @pytest.mark.parametrize("m,n,nnz", [(10, 10, 30), (5, 20, 40), (20, 5, 40)])
    def test_coo_csc_coo(self, rng, m, n, nnz):
        coo = random_coo(rng, m, n, nnz, duplicates=True).coalesce()
        back = coo.to_csc().to_coo()
        np.testing.assert_allclose(back.to_dense(), coo.to_dense())

    def test_csr_csc_csr(self, rng):
        csr = random_coo(rng, 14, 11, 50, duplicates=True).to_csr()
        back = csr.to_csc().to_csr()
        np.testing.assert_allclose(back.to_dense(), csr.to_dense())
        assert back.indptr.tolist() == csr.indptr.tolist()
        assert back.indices.tolist() == csr.indices.tolist()

    def test_csc_canonical_after_conversion(self, rng):
        csc = random_coo(rng, 30, 20, 100, duplicates=True).to_csr().to_csc()
        csc._validate()  # raises on violation

    def test_transpose_is_zero_copy_view(self, rng):
        csr = random_coo(rng, 9, 13, 40).to_csr()
        t = csr.transpose()  # CSC of the transpose
        assert t.shape == (13, 9)
        assert t.indices is csr.indices
        np.testing.assert_allclose(t.to_dense(), csr.to_dense().T)

    def test_dense_roundtrip(self, rng):
        dense = rng.normal(size=(8, 12)) * (rng.random((8, 12)) < 0.3)
        m = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(m.to_dense(), dense)


class TestSpMVAndMisc:
    def test_dot_dense_vector(self, rng):
        csr = random_coo(rng, 10, 8, 30).to_csr()
        x = rng.normal(size=8)
        np.testing.assert_allclose(csr.dot_dense(x), csr.to_dense() @ x)

    def test_dot_dense_matrix(self, rng):
        csr = random_coo(rng, 10, 8, 30).to_csr()
        x = rng.normal(size=(8, 3))
        np.testing.assert_allclose(csr.dot_dense(x), csr.to_dense() @ x)

    def test_dot_shape_mismatch(self, rng):
        csr = random_coo(rng, 10, 8, 30).to_csr()
        with pytest.raises(ShapeError):
            csr.dot_dense(np.ones(9))

    def test_matmul_operator(self, rng):
        a = random_coo(rng, 6, 7, 20).to_csr()
        b = random_coo(rng, 7, 5, 20).to_csr()
        c = a @ b
        np.testing.assert_allclose(c.to_dense(), a.to_dense() @ b.to_dense(), atol=1e-12)

    def test_matmul_shape_mismatch(self, rng):
        a = random_coo(rng, 6, 7, 10).to_csr()
        b = random_coo(rng, 6, 7, 10).to_csr()
        with pytest.raises(ShapeError):
            a @ b

    def test_density_and_degree(self):
        m = CSRMatrix((2, 2), [0, 1, 2], [0, 1], [1.0, 1.0])
        assert m.density() == 0.5
        assert m.mean_degree() == 1.0

    def test_memory_bytes(self):
        m = CSRMatrix((2, 2), [0, 1, 2], [0, 1], [1.0, 1.0])
        assert m.memory_bytes() == 3 * 4 + 2 * 4 + 2 * 8

    def test_to_csr_identity(self, rng):
        m = random_coo(rng, 5, 5, 10).to_csr()
        assert m.to_csr() is m
        c = m.to_csc()
        assert c.to_csc() is c
