"""Tests for MatrixMarket I/O and the statistics module."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.generators import erdos_renyi
from repro.matrix import (
    COOMatrix,
    matrix_stats,
    multiply_stats,
    read_matrix_market,
    write_matrix_market,
)
from repro.matrix.stats import degree_histogram, flops_per_k, total_flops
from repro.matrix.ops import allclose

from tests.util import random_coo


class TestMatrixMarket:
    def test_roundtrip(self, rng, tmp_path):
        m = random_coo(rng, 12, 9, 30).coalesce()
        path = tmp_path / "m.mtx"
        write_matrix_market(m, path)
        back = read_matrix_market(path)
        assert allclose(m, back)

    def test_roundtrip_csr(self, rng, tmp_path):
        m = random_coo(rng, 6, 6, 12).to_csr()
        path = tmp_path / "m.mtx"
        write_matrix_market(m, path)
        assert allclose(m, read_matrix_market(path))

    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
        )
        m = read_matrix_market(path)
        np.testing.assert_allclose(m.to_dense(), np.eye(2))

    def test_symmetric_unfolds(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n"
        )
        m = read_matrix_market(path)
        dense = m.to_dense()
        assert dense[1, 0] == 5.0 and dense[0, 1] == 5.0
        assert dense[2, 2] == 1.0

    def test_skew_symmetric(self, tmp_path):
        path = tmp_path / "sk.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 4.0\n"
        )
        dense = read_matrix_market(path).to_dense()
        assert dense[1, 0] == 4.0 and dense[0, 1] == -4.0

    def test_missing_banner(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("1 1 0\n")
        with pytest.raises(FormatError):
            read_matrix_market(path)

    def test_wrong_count(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n")
        with pytest.raises(FormatError):
            read_matrix_market(path)

    def test_unsupported_field(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n")
        with pytest.raises(FormatError):
            read_matrix_market(path)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n% a comment\n\n1 1 1\n1 1 2.5\n"
        )
        assert read_matrix_market(path).to_dense()[0, 0] == 2.5


class TestStats:
    def test_matrix_stats_basic(self):
        m = COOMatrix((3, 3), [0, 0, 1], [0, 1, 2], [1.0, 1.0, 1.0]).to_csr()
        s = matrix_stats(m)
        assert s.nnz == 3
        assert s.max_row_nnz == 2
        assert s.mean_degree == 1.0

    def test_flops_per_k_matches_bruteforce(self, rng):
        a = random_coo(rng, 15, 12, 40).to_csc()
        b = random_coo(rng, 12, 18, 40).to_csr()
        per_k = flops_per_k(a, b)
        da, db = a.to_dense(), b.to_dense()
        expected = [
            np.count_nonzero(da[:, k]) * np.count_nonzero(db[k, :])
            for k in range(12)
        ]
        assert per_k.tolist() == expected

    def test_total_flops_equals_expanded_tuples(self, small_pair):
        from repro.kernels import expand_outer

        a, b = small_pair
        rows, _, _ = expand_outer(a, b)
        assert total_flops(a, b) == len(rows)

    def test_multiply_stats_exact(self, small_pair):
        from repro.kernels import scipy_spgemm_oracle

        a, b = small_pair
        ms = multiply_stats(a, b)
        oracle = scipy_spgemm_oracle(a, b)
        assert ms.exact
        assert ms.nnz_c == oracle.nnz
        assert ms.cf == pytest.approx(ms.flop / oracle.nnz)

    def test_multiply_stats_sampled_close(self, small_pair):
        a, b = small_pair
        exact = multiply_stats(a, b)
        sampled = multiply_stats(a, b, exact_threshold=0)
        assert not sampled.exact
        assert sampled.nnz_c == pytest.approx(exact.nnz_c, rel=0.15)

    def test_multiply_stats_empty(self):
        from repro.matrix import CSCMatrix, CSRMatrix

        ms = multiply_stats(CSCMatrix.empty((4, 4)), CSRMatrix.empty((4, 4)))
        assert ms.flop == 0 and ms.nnz_c == 0 and ms.cf == 1.0

    def test_cf_at_least_one(self, skewed_pair):
        a, b = skewed_pair
        ms = multiply_stats(a, b)
        assert ms.cf >= 1.0

    def test_degree_histogram(self):
        m = COOMatrix((4, 4), [0, 0, 1], [0, 1, 2], [1.0] * 3).to_csr()
        hist = degree_histogram(m, "row")
        # rows: degrees 2,1,0,0 -> hist[0]=2, hist[1]=1, hist[2]=1
        assert hist.tolist() == [2, 1, 1]

    def test_degree_histogram_col(self):
        m = COOMatrix((4, 4), [0, 1, 2], [0, 0, 0], [1.0] * 3).to_csr()
        hist = degree_histogram(m, "col")
        assert hist[3] == 1 and hist[0] == 3

    def test_degree_histogram_bad_axis(self):
        m = COOMatrix.empty((2, 2)).to_csr()
        with pytest.raises(ValueError):
            degree_histogram(m, "diag")

    def test_er_expected_stats_sane(self):
        from repro.generators.er import er_expected_stats

        st = er_expected_stats(1 << 14, 8)
        a = erdos_renyi(1 << 14, 8, seed=0)
        ms = multiply_stats(a.to_csc(), a)
        assert ms.flop == pytest.approx(st["flop"], rel=0.05)
        assert ms.nnz_c == pytest.approx(st["nnz_c"], rel=0.05)
