"""Unit tests for structural/elementwise matrix operations."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.matrix import COOMatrix, CSRMatrix
from repro.matrix.ops import (
    add,
    allclose,
    col_slice,
    extract_diagonal,
    prune,
    row_slice,
    scale,
    transpose,
    tril,
    triu,
)

from tests.util import random_coo


class TestAllclose:
    def test_identical(self, rng):
        m = random_coo(rng, 8, 8, 20).to_csr()
        assert allclose(m, m.copy())

    def test_format_independent(self, rng):
        coo = random_coo(rng, 8, 8, 20)
        assert allclose(coo.to_csr(), coo.to_csc())

    def test_explicit_zero_equals_absent(self):
        with_zero = COOMatrix((2, 2), [0, 1], [0, 1], [0.0, 3.0])
        without = COOMatrix((2, 2), [1], [1], [3.0])
        assert allclose(with_zero, without)

    def test_detects_difference(self, rng):
        m = random_coo(rng, 8, 8, 20).to_csr()
        other = scale(m, 1.001)
        assert not allclose(m, other)

    def test_shape_mismatch_false(self):
        assert not allclose(CSRMatrix.empty((2, 2)), CSRMatrix.empty((2, 3)))


class TestAddScale:
    def test_add_dense_equiv(self, rng):
        a = random_coo(rng, 6, 9, 20)
        b = random_coo(rng, 6, 9, 25)
        c = add(a, b)
        np.testing.assert_allclose(c.to_dense(), a.to_dense() + b.to_dense())

    def test_add_weighted(self, rng):
        a = random_coo(rng, 5, 5, 10)
        b = random_coo(rng, 5, 5, 10)
        c = add(a, b, alpha=2.0, beta=-0.5)
        np.testing.assert_allclose(c.to_dense(), 2 * a.to_dense() - 0.5 * b.to_dense())

    def test_add_shape_mismatch(self):
        with pytest.raises(ShapeError):
            add(CSRMatrix.empty((2, 2)), CSRMatrix.empty((3, 3)))

    def test_scale(self, rng):
        m = random_coo(rng, 4, 4, 8).to_csr()
        np.testing.assert_allclose(scale(m, 3.0).to_dense(), 3 * m.to_dense())

    def test_scale_coo(self, rng):
        m = random_coo(rng, 4, 4, 8)
        np.testing.assert_allclose(scale(m, -1.0).to_dense(), -m.to_dense())


class TestStructural:
    def test_transpose_all_formats(self, rng):
        coo = random_coo(rng, 7, 11, 30)
        for m in (coo, coo.to_csr(), coo.to_csc()):
            t = transpose(m)
            np.testing.assert_allclose(t.to_dense(), coo.to_dense().T)
            assert type(t).__name__ == type(m).__name__

    def test_diagonal(self):
        m = COOMatrix((3, 3), [0, 1, 1], [0, 1, 2], [5.0, 6.0, 7.0])
        np.testing.assert_allclose(extract_diagonal(m), [5.0, 6.0, 0.0])

    def test_prune_zeros(self):
        m = COOMatrix((2, 2), [0, 1], [0, 1], [0.0, 2.0])
        p = prune(m)
        assert p.nnz == 1

    def test_prune_threshold(self):
        m = COOMatrix((2, 2), [0, 1], [0, 1], [0.1, 2.0])
        assert prune(m, threshold=0.5).nnz == 1

    def test_triu_tril_partition(self, rng):
        m = random_coo(rng, 9, 9, 40).coalesce()
        up = triu(m, 1)
        lo = tril(m, 0)
        np.testing.assert_allclose(
            add(up, lo).to_dense(), m.to_dense()
        )
        assert np.all(np.triu(up.to_dense(), 1) == up.to_dense())

    def test_row_slice(self, rng):
        m = random_coo(rng, 10, 6, 30).to_csr()
        s = row_slice(m, 3, 7)
        np.testing.assert_allclose(s.to_dense(), m.to_dense()[3:7])

    def test_row_slice_bounds(self, rng):
        m = random_coo(rng, 10, 6, 30).to_csr()
        with pytest.raises(ShapeError):
            row_slice(m, 5, 11)
        with pytest.raises(ShapeError):
            row_slice(m, -1, 5)

    def test_row_slice_empty(self, rng):
        m = random_coo(rng, 10, 6, 30).to_csr()
        s = row_slice(m, 4, 4)
        assert s.shape == (0, 6)
        assert s.nnz == 0

    def test_col_slice(self, rng):
        m = random_coo(rng, 10, 6, 30).to_csc()
        s = col_slice(m, 2, 5)
        np.testing.assert_allclose(s.to_dense(), m.to_dense()[:, 2:5])

    def test_col_slice_views(self, rng):
        # indices/data must be views into the parent, not copies.
        m = random_coo(rng, 10, 6, 30).to_csc()
        s = col_slice(m, 1, 4)
        assert s.indices.base is not None
        assert s.data.base is not None

    def test_col_slice_bounds(self, rng):
        m = random_coo(rng, 10, 6, 30).to_csc()
        with pytest.raises(ShapeError):
            col_slice(m, 4, 7)
        with pytest.raises(ShapeError):
            col_slice(m, -1, 3)

    def test_col_slice_empty(self, rng):
        m = random_coo(rng, 10, 6, 30).to_csc()
        s = col_slice(m, 3, 3)
        assert s.shape == (10, 0)
        assert s.nnz == 0
