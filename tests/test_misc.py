"""Edge-case tests: utilities, error hierarchy, engine NUMA options,
variable layout integration, rendering edge cases."""

import numpy as np
import pytest

from repro._util import distinct_count, sorted_unique
from repro.errors import (
    ConfigError,
    FormatError,
    MachineError,
    ReproError,
    ShapeError,
    SimulationError,
)


class TestUtil:
    def test_sorted_unique_basic(self):
        out = sorted_unique(np.array([3, 1, 3, 2, 1]))
        assert out.tolist() == [1, 2, 3]

    def test_sorted_unique_matches_numpy(self, rng):
        x = rng.integers(0, 50, size=500)
        np.testing.assert_array_equal(sorted_unique(x), np.unique(x))

    def test_sorted_unique_empty_and_single(self):
        assert sorted_unique(np.array([], dtype=int)).tolist() == []
        assert sorted_unique(np.array([7])).tolist() == [7]

    def test_distinct_count(self, rng):
        x = rng.integers(0, 30, size=200)
        assert distinct_count(x) == len(np.unique(x))
        assert distinct_count(np.array([])) == 0

    def test_sorted_unique_all_duplicates(self):
        assert sorted_unique(np.full(10, 4)).tolist() == [4]


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [ShapeError, FormatError, ConfigError, MachineError, SimulationError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_error_compat(self):
        # Shape/format/config errors double as ValueErrors for callers
        # using generic except clauses.
        for exc in (ShapeError, FormatError, ConfigError, MachineError):
            assert issubclass(exc, ValueError)

    def test_simulation_error_is_runtime(self):
        assert issubclass(SimulationError, RuntimeError)

    def test_catchable_as_repro_error(self):
        from repro.matrix import CSRMatrix

        with pytest.raises(ReproError):
            CSRMatrix((2, 2), [0, 1], [0], [1.0])


class TestEngineOptions:
    def test_explicit_remote_fraction(self):
        import repro
        from repro.costmodel import workload_stats
        from repro.machine import skylake_sp
        from repro.simulate import simulate_spgemm

        a = repro.erdos_renyi(512, 8, seed=1)
        st = workload_stats(a.to_csc(), a)
        m = skylake_sp()
        local = simulate_spgemm(
            stats=st, algorithm="pb", machine=m, nthreads=48, sockets=2,
            remote_fraction=0.0,
        )
        remote = simulate_spgemm(
            stats=st, algorithm="pb", machine=m, nthreads=48, sockets=2,
            remote_fraction=1.0,
        )
        assert remote.total_seconds > local.total_seconds

    def test_single_socket_ignores_remote(self):
        import repro
        from repro.costmodel import workload_stats
        from repro.machine import laptop_generic
        from repro.simulate import simulate_spgemm

        a = repro.erdos_renyi(256, 4, seed=1)
        st = workload_stats(a.to_csc(), a)
        m = laptop_generic()
        r0 = simulate_spgemm(stats=st, algorithm="pb", machine=m, remote_fraction=0.0)
        r1 = simulate_spgemm(stats=st, algorithm="pb", machine=m, remote_fraction=0.9)
        assert r0.total_seconds == pytest.approx(r1.total_seconds)

    def test_bidirectional_numa_mix(self):
        from repro.machine import skylake_sp
        from repro.machine.numa import numa_mix_bandwidth

        m = skylake_sp()
        one_way = numa_mix_bandwidth(m, 0.5)
        both_ways = numa_mix_bandwidth(m, 0.5, bidirectional=True)
        assert both_ways < one_way


class TestVariableLayoutIntegration:
    def test_distribute_with_variable_layout(self, rng):
        from repro.core.binning import VariableBinLayout, distribute_to_bins

        layout = VariableBinLayout(100, 80, np.array([0, 10, 50, 100]))
        rows = rng.integers(0, 100, size=300)
        cols = rng.integers(0, 80, size=300)
        vals = rng.normal(size=300)
        br, bc, bv, starts = distribute_to_bins(layout, rows, cols, vals)
        assert starts[-1] == 300
        for b in range(3):
            lo, hi = layout.row_range(b)
            seg = br[starts[b] : starts[b + 1]]
            assert np.all((seg >= lo) & (seg < hi))

    def test_pack_unpack_variable(self, rng):
        from repro.core.binning import VariableBinLayout, pack_keys, unpack_keys

        layout = VariableBinLayout(64, 32, np.array([0, 5, 40, 64]))
        rows = rng.integers(0, 64, size=120)
        cols = rng.integers(0, 32, size=120)
        keys = pack_keys(layout, rows, cols)
        binid = layout.bin_of_rows(rows)
        for b in range(3):
            mask = binid == b
            r2, c2 = unpack_keys(layout, keys[mask], b)
            np.testing.assert_array_equal(r2, rows[mask])
            np.testing.assert_array_equal(c2, cols[mask])


class TestRenderingEdgeCases:
    def test_render_table_empty(self):
        from repro.analysis import ResultTable, render_table

        t = ResultTable("empty", ["a", "b"])
        out = render_table(t)
        assert "empty" in out and "a" in out

    def test_render_none_values(self):
        from repro.analysis import ResultTable, render_table

        t = ResultTable("t", ["a"])
        t.add(a=None)
        assert "-" in render_table(t)

    def test_float_formats(self):
        from repro.analysis.tables import _fmt

        assert _fmt(0.0) == "0"
        assert _fmt(1234.5) == "1,234" or _fmt(1234.5) == "1,235"
        assert _fmt(12.34) == "12.3"
        assert _fmt(0.1234) == "0.123"
        assert _fmt("x") == "x"

    def test_series_scaling(self):
        from repro.analysis import ResultTable, render_series

        t = ResultTable("s", ["x", "y", "g"])
        t.add(x=1, y=100.0, g="a")
        t.add(x=2, y=1.0, g="a")
        out = render_series(t, "x", "y", "g", width=10)
        lines = [l for l in out.splitlines() if "#" in l]
        assert len(lines[0].split("|")[1]) > len(lines[1].split("|")[1])


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports(self):
        import repro.apps
        import repro.kernels
        import repro.machine
        import repro.matrix

        for mod in (repro.apps, repro.kernels, repro.machine, repro.matrix):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"
