"""Numeric and structural edge cases / failure injection."""

import numpy as np
import pytest

from repro.core import PBConfig, pb_spgemm, plan_bins
from repro.errors import ConfigError
from repro.kernels import scipy_spgemm_oracle, spgemm
from repro.matrix import COOMatrix, CSCMatrix, CSRMatrix
from repro.matrix.ops import allclose

ALGS = ("pb", "heap", "hash", "hashvec", "spa", "esc_column")


class TestSpecialValues:
    def _pair_with_values(self, vals_a, vals_b):
        a = COOMatrix((2, 2), [0, 1], [0, 1], vals_a).to_csc()
        b = COOMatrix((2, 2), [0, 1], [0, 1], vals_b).to_csr()
        return a, b

    @pytest.mark.parametrize("alg", ALGS)
    def test_infinities(self, alg):
        a, b = self._pair_with_values([np.inf, 2.0], [3.0, -np.inf])
        c = spgemm(a, b, algorithm=alg)
        dense = c.to_dense()
        assert dense[0, 0] == np.inf
        assert dense[1, 1] == -np.inf

    @pytest.mark.parametrize("alg", ALGS)
    def test_nan_propagates(self, alg):
        a, b = self._pair_with_values([np.nan, 1.0], [1.0, 1.0])
        c = spgemm(a, b, algorithm=alg)
        assert np.isnan(c.to_dense()[0, 0])

    @pytest.mark.parametrize("alg", ALGS)
    def test_tiny_and_huge_magnitudes(self, alg):
        a, b = self._pair_with_values([1e-300, 1e300], [1e-300, 1e300])
        with np.errstate(over="ignore", under="ignore"):
            c = spgemm(a, b, algorithm=alg)
        dense = c.to_dense()
        assert dense[0, 0] == 0.0 or dense[0, 0] == pytest.approx(1e-600)
        assert np.isinf(dense[1, 1]) or dense[1, 1] == pytest.approx(1e600)

    def test_negative_values_cancel_exactly(self):
        a = COOMatrix((1, 2), [0, 0], [0, 1], [1.5, -1.5]).to_csc()
        b = COOMatrix((2, 1), [0, 1], [0, 0], [2.0, 2.0]).to_csr()
        for alg in ALGS:
            c = spgemm(a, b, algorithm=alg)
            assert allclose(c, scipy_spgemm_oracle(a, b)), alg


class TestDegenerateShapes:
    @pytest.mark.parametrize("alg", ALGS)
    def test_zero_by_zero(self, alg):
        c = spgemm(CSCMatrix.empty((0, 0)), CSRMatrix.empty((0, 0)), algorithm=alg)
        assert c.shape == (0, 0)

    @pytest.mark.parametrize("alg", ALGS)
    def test_one_by_one(self, alg):
        a = CSCMatrix((1, 1), [0, 1], [0], [3.0])
        b = CSRMatrix((1, 1), [0, 1], [0], [4.0])
        c = spgemm(a, b, algorithm=alg)
        assert c.to_dense()[0, 0] == 12.0

    @pytest.mark.parametrize("alg", ALGS)
    def test_row_vector_times_column_vector(self, alg):
        # (1 x 5) @ (5 x 1) -> scalar
        a = COOMatrix((1, 5), [0, 0], [1, 3], [2.0, 3.0]).to_csc()
        b = COOMatrix((5, 1), [1, 3], [0, 0], [5.0, 7.0]).to_csr()
        c = spgemm(a, b, algorithm=alg)
        assert c.to_dense()[0, 0] == 31.0

    @pytest.mark.parametrize("alg", ALGS)
    def test_outer_product_shape(self, alg):
        # (5 x 1) @ (1 x 5) -> rank-1
        a = COOMatrix((5, 1), [0, 4], [0, 0], [1.0, 2.0]).to_csc()
        b = COOMatrix((1, 5), [0, 0], [0, 4], [3.0, 4.0]).to_csr()
        c = spgemm(a, b, algorithm=alg)
        dense = c.to_dense()
        assert dense[0, 0] == 3.0 and dense[4, 4] == 8.0
        assert c.nnz == 4

    def test_dense_row_in_sparse_matrix(self):
        # One fully dense row (worst-case single bin load).
        n = 64
        dense_row = COOMatrix(
            (n, n),
            np.concatenate([np.zeros(n, dtype=int), [5]]),
            np.concatenate([np.arange(n), [5]]),
            np.ones(n + 1),
        ).to_csr()
        a = dense_row.to_csc()
        c = pb_spgemm(a, dense_row)
        assert allclose(c, scipy_spgemm_oracle(a, dense_row))


class TestKeyPackingLimits:
    def test_oversized_key_rejected(self):
        with pytest.raises(ConfigError):
            plan_bins(1 << 35, 1 << 35, 16, 1 << 31)

    def test_large_dims_fall_back_to_64bit(self):
        layout = plan_bins(1 << 22, 1 << 22, 1024, 1 << 12)
        assert layout.key_dtype == np.uint64  # 12 + 22 = 34 bits > 32

    def test_paper_example_packs(self):
        layout = plan_bins(1 << 20, 1 << 20, 1024, 1 << 10)
        assert layout.key_dtype == np.uint32


class TestPBConfigExtremes:
    def test_one_tuple_local_bin(self, small_pair):
        a, b = small_pair
        cfg = PBConfig(local_bin_bytes=16)  # exactly one tuple
        assert allclose(pb_spgemm(a, b, config=cfg), scipy_spgemm_oracle(a, b))

    def test_giant_l2_target_single_bin(self, small_pair):
        a, b = small_pair
        cfg = PBConfig(l2_target_bytes=1 << 40)
        assert allclose(pb_spgemm(a, b, config=cfg), scipy_spgemm_oracle(a, b))

    def test_chunk_of_one_flop(self):
        a = COOMatrix((8, 8), [0, 3, 5], [1, 2, 7], [1.0, 2.0, 3.0]).to_csc()
        b = COOMatrix((8, 8), [1, 2, 7], [4, 4, 0], [1.0, 1.0, 1.0]).to_csr()
        cfg = PBConfig(chunk_flops=1)
        assert allclose(pb_spgemm(a, b, config=cfg), scipy_spgemm_oracle(a, b))


class TestLargeFlopTotals:
    def test_flop_count_uses_int64(self):
        # Pointer-only symbolic with counts that would overflow int32.
        from repro.core.symbolic import symbolic_phase

        n = 4
        big = 70_000  # 70k * 70k per column pair > 2^32 total
        indptr = np.arange(n + 1) * big
        indices = np.tile(np.arange(big) % (n * big), 1)  # placeholder
        # Build via column counts only: use matrices with many entries in
        # one column but tiny dims is impossible; instead check the dtype
        # arithmetic directly.
        a_colnnz = np.full(n, big, dtype=np.int64)
        b_rownnz = np.full(n, big, dtype=np.int64)
        per_k = a_colnnz * b_rownnz
        assert per_k.sum() == 4 * big * big  # no overflow at int64
        assert per_k.sum() > np.iinfo(np.int32).max
