"""Tests of the real process-pool backend (``repro.parallel``).

Bit-identity is the contract: ``PBConfig(executor="process")`` must
produce byte-for-byte the same CSR product as the serial pipeline for
every bin mapping and every registered semiring, on both ER and R-MAT
inputs.  The smoke tests keep >=2 real workers in the tier-1 run so
executor regressions fail fast; the fallback tests pin the documented
degradation conditions via ``PBResult.executor_used``.
"""

import os
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PBConfig
from repro.core.pb_spgemm import pb_spgemm_detailed
from repro.errors import ConfigError
from repro.generators import erdos_renyi, rmat
from repro.kernels import chunk_ranges
from repro.parallel import process_backend_available, semiring_token
from repro.parallel.executor import ProcessEngine, _balanced_groups
from repro.parallel import shm
from repro.parallel.shm import SharedArena, attach
from repro.semiring import PLUS_TIMES, Semiring, available_semirings
from tests.util import random_coo

needs_pool = pytest.mark.skipif(
    not process_backend_available(), reason="POSIX shared memory unavailable"
)

MAPPINGS = ("range", "modulo", "balanced")
SEMIRINGS = sorted(available_semirings())


def _config(mapping="range", **kw):
    """PBConfig with enough bins for real fan-out (modulo disables packing)."""
    kw.setdefault("nbins", 16)
    return PBConfig(bin_mapping=mapping, pack_keys=(mapping != "modulo"), **kw)


def _assert_bit_identical(ser, par):
    assert par.executor_used == "process"
    assert ser.c.shape == par.c.shape
    np.testing.assert_array_equal(ser.c.indptr, par.c.indptr)
    np.testing.assert_array_equal(ser.c.indices, par.c.indices)
    assert ser.c.data.tobytes() == par.c.data.tobytes()


@pytest.fixture(scope="module")
def mats():
    return {
        "er": erdos_renyi(1 << 9, edge_factor=4, seed=11),
        "rmat": rmat(9, edge_factor=4, seed=7),
    }


@pytest.mark.parallel
@needs_pool
class TestBitIdentity:
    @pytest.mark.parametrize("mapping", MAPPINGS)
    @pytest.mark.parametrize("kind", ("er", "rmat"))
    def test_every_bin_mapping(self, mats, kind, mapping):
        a = mats[kind]
        cfg = _config(mapping)
        ser = pb_spgemm_detailed(a.to_csc(), a.to_csr(), config=cfg)
        par = pb_spgemm_detailed(
            a.to_csc(), a.to_csr(), config=cfg.with_(nthreads=3, executor="process")
        )
        _assert_bit_identical(ser, par)
        assert par.radix_passes == ser.radix_passes
        assert np.array_equal(par.tuples_per_bin, ser.tuples_per_bin)

    @pytest.mark.parametrize("name", SEMIRINGS)
    def test_every_semiring(self, mats, name):
        a = mats["rmat"]
        ser = pb_spgemm_detailed(
            a.to_csc(), a.to_csr(), semiring=name, config=_config()
        )
        par = pb_spgemm_detailed(
            a.to_csc(),
            a.to_csr(),
            semiring=name,
            config=_config(nthreads=2, executor="process"),
        )
        _assert_bit_identical(ser, par)

    def test_rectangular_and_tiny_chunks(self):
        rng = np.random.default_rng(3)
        a = random_coo(rng, 60, 90, 400, duplicates=True)
        b = random_coo(rng, 90, 40, 400, duplicates=True)
        cfg = _config(nbins=8, chunk_flops=17)
        ser = pb_spgemm_detailed(a.to_csc(), b.to_csr(), config=cfg)
        par = pb_spgemm_detailed(
            a.to_csc(), b.to_csr(), config=cfg.with_(nthreads=2, executor="process")
        )
        # chunk_flops far below flop forces many expand tasks per worker;
        # the fixed flop-prefix offsets must keep the stream identical.
        _assert_bit_identical(ser, par)


@pytest.mark.parallel
@needs_pool
class TestProcessProperty:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**16),
        kind=st.sampled_from(("er", "rmat")),
        mapping=st.sampled_from(MAPPINGS),
        sr=st.sampled_from(SEMIRINGS),
        chunk=st.sampled_from((19, 4096)),
    )
    def test_process_identical_to_serial(self, seed, kind, mapping, sr, chunk):
        a = (
            erdos_renyi(1 << 7, edge_factor=3, seed=seed)
            if kind == "er"
            else rmat(7, edge_factor=3, seed=seed)
        )
        cfg = _config(mapping, nbins=8, chunk_flops=chunk)
        ser = pb_spgemm_detailed(a.to_csc(), a.to_csr(), semiring=sr, config=cfg)
        par = pb_spgemm_detailed(
            a.to_csc(),
            a.to_csr(),
            semiring=sr,
            config=cfg.with_(nthreads=2, executor="process"),
        )
        _assert_bit_identical(ser, par)


def _nap_pid(delay: float) -> int:
    """Worker task: sleep (so both workers must exist) and report the pid."""
    time.sleep(delay)
    return os.getpid()


@pytest.mark.parallel
@needs_pool
class TestSmoke:
    def test_pool_spawns_two_distinct_workers(self):
        # Two concurrent sleeping tasks cannot share a worker, so the
        # pool must have spun up >= 2 real child processes.
        with ProcessEngine(2) as engine:
            assert engine.nworkers == 2
            futures = [engine._pool.submit(_nap_pid, 0.2) for _ in range(2)]
            pids = {f.result() for f in futures}
        assert len(pids) == 2
        assert os.getpid() not in pids

    def test_end_to_end_records_worker_timings(self):
        a = erdos_renyi(1 << 8, edge_factor=4, seed=3)
        ser = pb_spgemm_detailed(a.to_csc(), a.to_csr())
        par = pb_spgemm_detailed(
            a.to_csc(),
            a.to_csr(),
            config=PBConfig(nthreads=2, executor="process"),
        )
        _assert_bit_identical(ser, par)
        for key in ("expand_workers", "sort_compress_workers"):
            times = par.phase_seconds[key]
            assert times and all(t >= 0 for t in times)
        # Scalar phase keys must not include the per-worker lists.
        scalar = {k: v for k, v in par.phase_seconds.items() if not k.endswith("_workers")}
        assert set(scalar) == {"symbolic", "expand", "sort_compress", "convert"}


class TestFallbacks:
    def test_invalid_executor_rejected(self):
        with pytest.raises(ConfigError, match="executor"):
            PBConfig(executor="threads")

    def test_nthreads_one_stays_serial(self):
        a = erdos_renyi(64, edge_factor=2, seed=0)
        res = pb_spgemm_detailed(
            a.to_csc(), a.to_csr(), config=PBConfig(executor="process")
        )
        assert res.executor_used == "serial"

    def test_empty_product_short_circuits(self):
        from repro.matrix import CSCMatrix, CSRMatrix

        a = CSCMatrix.empty((8, 8))
        b = CSRMatrix.empty((8, 8))
        res = pb_spgemm_detailed(
            a, b, config=PBConfig(nthreads=4, executor="process")
        )
        assert res.executor_used == "serial"
        assert res.c.nnz == 0

    def test_semiring_tokens(self):
        # Registered semirings travel by name; unregistered picklable
        # ones by value; lambda-built ones force the serial fallback.
        assert semiring_token(PLUS_TIMES) == "plus_times"
        anon = Semiring("anon", np.add, np.multiply, 0.0)
        assert semiring_token(anon) is anon
        closure = Semiring("closure", np.add, lambda x, y: x * y, 0.0)
        assert semiring_token(closure) is None

    def test_unpicklable_semiring_falls_back(self):
        closure = Semiring("closure", np.add, lambda x, y: x * y, 0.0)
        rng = np.random.default_rng(9)
        a = random_coo(rng, 32, 32, 128)
        res = pb_spgemm_detailed(
            a.to_csc(),
            a.to_csr(),
            semiring=closure,
            config=PBConfig(nthreads=2, executor="process"),
        )
        assert res.executor_used == "serial"
        ref = pb_spgemm_detailed(a.to_csc(), a.to_csr())
        np.testing.assert_allclose(res.c.to_dense(), ref.c.to_dense(), atol=1e-12)


class TestWorkDecomposition:
    def test_balanced_groups_partition(self):
        w = np.array([5.0, 1, 1, 1, 8, 1, 1])
        groups = _balanced_groups(w, 3)
        assert 1 <= len(groups) <= 3
        assert groups[0][0] == 0 and groups[-1][1] == len(w)
        for (_, a_hi), (b_lo, _) in zip(groups, groups[1:]):
            assert a_hi == b_lo

    def test_balanced_groups_degenerate(self):
        assert _balanced_groups(np.array([]), 4) == []
        zero = _balanced_groups(np.zeros(5), 2)
        assert zero[0][0] == 0 and zero[-1][1] == 5
        singles = _balanced_groups(np.ones(3), 10)
        assert singles == [(0, 1), (1, 2), (2, 3)]

    def test_chunk_ranges_cover_all_flops(self):
        per_k = np.array([3, 0, 5, 2, 0, 7, 1])
        ranges = list(chunk_ranges(per_k, 6))
        assert ranges[0][0] == 0 and ranges[-1][1] == len(per_k)
        for (_, a_hi), (b_lo, _) in zip(ranges, ranges[1:]):
            assert a_hi == b_lo
        # Every range holds work, and total work is preserved.
        assert all(per_k[lo:hi].sum() > 0 for lo, hi in ranges)
        assert sum(int(per_k[lo:hi].sum()) for lo, hi in ranges) == per_k.sum()

    def test_chunk_ranges_empty_and_invalid(self):
        assert list(chunk_ranges(np.zeros(4, dtype=np.int64), 8)) == []
        with pytest.raises(ValueError, match="chunk_flops"):
            list(chunk_ranges(np.array([1, 2]), 0))


@needs_pool
class TestSharedArena:
    def test_share_and_take_roundtrip(self):
        x = np.arange(10, dtype=np.int64)
        with SharedArena() as arena:
            view = arena.share("x", x)
            np.testing.assert_array_equal(view, x)
            spec = arena.spec("x")
            assert spec.shape == (10,) and spec.nbytes == x.nbytes
            taken = arena.take("x")
        np.testing.assert_array_equal(taken, x)  # copy survives close

    def test_attach_sees_parent_writes(self):
        # Simulate the fork-worker tracker state so the in-process
        # attach leaves the parent's registration alone.
        shm.set_tracker_inherited(True)
        try:
            with SharedArena() as arena:
                view = arena.allocate("out", (6,), np.float64)
                mapped, seg = attach(arena.spec("out"))
                view[...] = np.arange(6.0)
                np.testing.assert_array_equal(mapped, np.arange(6.0))
                seg.close()
        finally:
            shm.set_tracker_inherited(False)

    def test_zero_length_allocation(self):
        with SharedArena() as arena:
            v = arena.allocate("empty", (0,), np.float64)
            assert v.size == 0

    def test_duplicate_key_rejected(self):
        with SharedArena() as arena:
            arena.allocate("x", (3,), np.int64)
            with pytest.raises(KeyError, match="x"):
                arena.allocate("x", (3,), np.int64)

    def test_close_idempotent(self):
        arena = SharedArena()
        arena.allocate("x", (4,), np.int64)
        arena.close()
        arena.close()
