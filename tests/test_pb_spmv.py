"""Tests for propagation-blocking SpMV (the technique's origin)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.generators import erdos_renyi, rmat
from repro.kernels import pb_spmv, spmv_reference

from tests.util import random_coo


class TestPBSpMV:
    @pytest.mark.parametrize("nbins", [1, 2, 8, 64])
    def test_matches_reference(self, rng, nbins):
        a = random_coo(rng, 80, 60, 300).to_csr()
        x = rng.normal(size=60)
        got = pb_spmv(a.to_csc(), x, nbins=nbins)
        np.testing.assert_allclose(got, spmv_reference(a, x), atol=1e-12)

    def test_matches_dense(self, rng):
        a = random_coo(rng, 50, 50, 200).to_csr()
        x = rng.normal(size=50)
        np.testing.assert_allclose(
            pb_spmv(a.to_csc(), x), a.to_dense() @ x, atol=1e-12
        )

    def test_er_and_rmat(self):
        for m in (erdos_renyi(256, 4, seed=1), rmat(8, 4, seed=2)):
            x = np.random.default_rng(0).normal(size=256)
            np.testing.assert_allclose(
                pb_spmv(m.to_csc(), x), m.to_dense() @ x, atol=1e-10
            )

    def test_empty_matrix(self):
        from repro.matrix import CSCMatrix

        y = pb_spmv(CSCMatrix.empty((5, 4)), np.ones(4))
        np.testing.assert_allclose(y, np.zeros(5))

    def test_shape_mismatch(self, rng):
        a = random_coo(rng, 10, 8, 20).to_csc()
        with pytest.raises(ShapeError):
            pb_spmv(a, np.ones(9))
        with pytest.raises(ShapeError):
            pb_spmv(a, np.ones((8, 2)))

    def test_invalid_bins(self, rng):
        a = random_coo(rng, 10, 8, 20).to_csc()
        with pytest.raises(ValueError):
            pb_spmv(a, np.ones(8), nbins=0)

    def test_more_bins_than_rows(self, rng):
        a = random_coo(rng, 6, 6, 12).to_csr()
        x = rng.normal(size=6)
        np.testing.assert_allclose(
            pb_spmv(a.to_csc(), x, nbins=40), a.to_dense() @ x, atol=1e-12
        )
