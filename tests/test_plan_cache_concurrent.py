"""Concurrent and corrupt on-disk plan caches (``@pytest.mark.planner``).

Two processes sharing one ``plans.json`` must never corrupt it or crash
each other: every flush is an atomic ``os.replace`` from a pid-unique
temp file, so a reader sees either the old or the new cache, never a
torn hybrid.  And when the file *is* damaged (partial disk, manual
edit), the contract is degrade-to-miss: a ``RuntimeWarning`` and an
empty cache, never a failed multiply.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro
from repro import PBConfig
from repro.planner.cache import CACHE_SCHEMA_VERSION, PLANS_FILENAME, PlanCache

pytestmark = pytest.mark.planner

REPO_ROOT = Path(__file__).resolve().parent.parent

WRITER = '''
import sys

from repro.planner.cache import PlanCache


def main(cache_dir, wid, n):
    cache = PlanCache(cache_dir)
    for i in range(n):
        key = f"k{(i + wid) % 6}"
        cache.put(
            key,
            {
                "algorithm": "pb" if i % 2 else "hash",
                "overrides": {},
                "candidates": [],
            },
        )
        cache.record_feedback(key, "pb", 0.001 * (i + 1))
        rec = cache.get(key)
        assert rec is not None and "algorithm" in rec, rec
    print("WRITER-OK")


if __name__ == "__main__":
    main(sys.argv[1], int(sys.argv[2]), int(sys.argv[3]))
'''


def _spawn_writer(script: Path, cache_dir: Path, wid: int, n: int):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    return subprocess.Popen(
        [sys.executable, str(script), str(cache_dir), str(wid), str(n)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def test_two_processes_share_one_plans_json(tmp_path):
    script = tmp_path / "cache_writer.py"
    script.write_text(WRITER)
    cache_dir = tmp_path / "plans"
    writers = [_spawn_writer(script, cache_dir, wid, 60) for wid in (0, 1)]

    # While both writers hammer put/record_feedback, every fresh load in
    # this process must see a structurally valid cache — atomic replace
    # means old-or-new, never torn.
    loads = 0
    while any(w.poll() is None for w in writers):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            PlanCache(cache_dir)
        loads += 1
    assert loads >= 1

    for w in writers:
        out, err = w.communicate(timeout=60)
        assert w.returncode == 0, f"writer failed:\n{out}\n{err}"
        assert "WRITER-OK" in out

    data = json.loads((cache_dir / PLANS_FILENAME).read_text())
    assert data["schema_version"] == CACHE_SCHEMA_VERSION
    assert data["entries"]  # last atomic write won, entries intact
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        final = PlanCache(cache_dir)
    assert len(final) > 0
    assert all(final.get(k) is not None for k in data["entries"])


@pytest.mark.parametrize(
    "junk",
    [
        "{truncated",  # torn mid-object
        '{"schema_version": 99, "entries": {}}',  # wrong version
        '{"entries": "not a dict", "schema_version": 1}',  # wrong shape
        "",  # zero bytes
    ],
)
def test_torn_write_degrades_to_miss(tmp_path, junk):
    cache_dir = tmp_path / "plans"
    cache_dir.mkdir()
    (cache_dir / PLANS_FILENAME).write_text(junk)
    with pytest.warns(RuntimeWarning, match="plan cache"):
        cache = PlanCache(cache_dir)
    assert len(cache) == 0
    assert cache.get("anything") is None
    # The damaged file regenerates on the next write.
    cache.put("k0", {"algorithm": "pb", "overrides": {}})
    data = json.loads((cache_dir / PLANS_FILENAME).read_text())
    assert data["schema_version"] == CACHE_SCHEMA_VERSION
    assert "k0" in data["entries"]


def test_auto_multiply_survives_corrupt_cache(tmp_path):
    corrupt = tmp_path / "corrupt"
    corrupt.mkdir()
    (corrupt / PLANS_FILENAME).write_text("{definitely not json")
    pristine = tmp_path / "pristine"
    a = repro.erdos_renyi(1 << 7, 4, seed=13, fmt="csr")
    ref = repro.multiply(a, a, algorithm="auto", config=PBConfig(plan_cache_dir=str(pristine)))
    with pytest.warns(RuntimeWarning, match="plan cache"):
        c = repro.multiply(
            a, a, algorithm="auto", config=PBConfig(plan_cache_dir=str(corrupt))
        )
    assert c.data.tobytes() == ref.data.tobytes()
    assert (c.indptr == ref.indptr).all() and (c.indices == ref.indices).all()
