"""Planner subsystem coverage (``@pytest.mark.planner``).

Exercises the real components end to end — no mocks: determinism of
``plan()``, the two-tier sketch (cache hits never sample), corrupted
on-disk state degrading with a warning instead of crashing, feedback
overriding the model's pick, ``algorithm="auto"`` bit-identity against
direct invocation for every semiring, the dispatch-registry metadata
the planner consumes, the single-source ``nbins`` resolution rule, and
a real ``calibrate(quick=True)`` run.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

import repro
from repro.core.config import PBConfig, resolve_nbins
from repro.core.pb_spgemm import pb_spgemm_detailed
from repro.core.symbolic import symbolic_phase
from repro.errors import ConfigError, DispatchError, ReproError
from repro.generators import erdos_renyi, rmat
from repro.kernels.dispatch import algorithm_metadata, get_algorithm
from repro.matrix.csr import CSRMatrix
from repro.planner import (
    MachineProfile,
    PlanCache,
    calibrate,
    default_profile,
    load_profile,
    plan,
    save_profile,
    sketch,
)
from repro.planner.calibrate import PROFILE_FILENAME
from repro.planner.cache import PLANS_FILENAME
from repro.semiring import available_semirings

pytestmark = pytest.mark.planner


@pytest.fixture(scope="module")
def operands():
    b = erdos_renyi(1 << 9, 8, seed=3, fmt="csr")
    return b.to_csc(), b


# -- plan(): determinism, caching, degenerate inputs ------------------------


def test_plan_is_deterministic(operands):
    a, b = operands
    plans = [
        plan(a, b, profile=default_profile(), cache=PlanCache(), seed=7)
        for _ in range(2)
    ]
    p0, p1 = plans
    assert p0.algorithm == p1.algorithm
    assert p0.cache_key == p1.cache_key
    assert p0.overrides == p1.overrides
    assert p0.predicted_seconds == p1.predicted_seconds
    assert [c.to_dict() for c in p0.candidates] == [
        c.to_dict() for c in p1.candidates
    ]


def test_plan_cache_hit_skips_sampling(operands):
    a, b = operands
    cache = PlanCache()
    p0 = plan(a, b, profile=default_profile(), cache=cache)
    assert p0.source == "model"
    assert p0.sketch.deep  # the miss paid for the deep tier
    p1 = plan(a, b, profile=default_profile(), cache=cache)
    assert p1.source == "cache"
    assert p1.algorithm == p0.algorithm
    assert not p1.sketch.deep  # the hit never sampled
    assert p1.cache_key == p0.cache_key


def test_plan_records_all_candidates_with_reasons(operands):
    a, b = operands
    p = plan(a, b, profile=default_profile(), cache=PlanCache())
    assert {c.algorithm for c in p.candidates} == set(repro.available_algorithms())
    winner, losers = p.candidates[0], p.candidates[1:]
    assert winner.algorithm == p.algorithm and winner.reason is None
    assert all(c.reason for c in losers)  # every loser says why


def test_empty_matrix_plans_without_sampling():
    z = CSRMatrix.from_dense(np.zeros((8, 8)))
    sk = sketch(z.to_csc(), z)
    assert sk.flop == 0 and sk.deep and sk.nnz_c == 0  # cheap tier fixed it
    p = plan(z.to_csc(), z, profile=default_profile(), cache=PlanCache())
    c = repro.multiply(z, z, algorithm=p)
    assert c.nnz == 0


def test_one_by_one_matrix_plans_and_multiplies():
    one = CSRMatrix.from_dense(np.array([[2.0]]))
    p = plan(one.to_csc(), one, profile=default_profile(), cache=PlanCache())
    assert p.sketch.flop == 1
    c = repro.multiply(one, one, algorithm=p)
    assert c.shape == (1, 1) and c.data[0] == 4.0


# -- corrupted on-disk state: warn + regenerate, never crash ----------------


def test_corrupt_profile_warns_and_regenerates(tmp_path, operands):
    (tmp_path / PROFILE_FILENAME).write_text('{"schema_version": 1, "copy_')
    with pytest.warns(RuntimeWarning, match="corrupt machine profile"):
        assert load_profile(tmp_path) is None
    a, b = operands
    cfg = PBConfig(plan_cache_dir=str(tmp_path))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        c = repro.multiply(a.to_csr(), b, algorithm="auto", config=cfg)
    assert c.nnz > 0  # the multiply itself never fails
    prof = calibrate(quick=True, measure_pool=False)
    save_profile(prof, tmp_path)  # regenerating overwrites the junk
    loaded = load_profile(tmp_path)
    assert loaded is not None and loaded.fingerprint() == prof.fingerprint()


def test_wrong_schema_profile_is_rejected(tmp_path):
    bad = default_profile().to_dict()
    bad["schema_version"] = 99
    (tmp_path / PROFILE_FILENAME).write_text(json.dumps(bad))
    with pytest.warns(RuntimeWarning, match="schema_version"):
        assert load_profile(tmp_path) is None


def test_corrupt_plan_cache_warns_and_starts_empty(tmp_path, operands):
    (tmp_path / PLANS_FILENAME).write_text("not json at all {{{")
    with pytest.warns(RuntimeWarning, match="corrupt plan cache"):
        cache = PlanCache(tmp_path)
    assert len(cache) == 0
    a, b = operands
    p = plan(a, b, profile=default_profile(), cache=cache)  # still functional
    assert p.source == "model" and len(cache) == 1
    # ...and the rewritten file round-trips cleanly.
    reloaded = PlanCache(tmp_path)
    assert len(reloaded) == 1
    assert plan(a, b, profile=default_profile(), cache=reloaded).source == "cache"


def test_truncated_plan_cache_payload(tmp_path):
    (tmp_path / PLANS_FILENAME).write_text('{"schema_version": 1}')
    with pytest.warns(RuntimeWarning, match="corrupt plan cache"):
        cache = PlanCache(tmp_path)
    assert len(cache) == 0


# -- feedback loop ----------------------------------------------------------


def test_feedback_overrides_model_pick(operands):
    a, b = operands
    cache = PlanCache()
    p0 = plan(a, b, profile=default_profile(), cache=cache)
    other = next(
        n for n in sorted(repro.available_algorithms()) if n != p0.algorithm
    )
    # Measurements say the model's pick is slow and `other` is fast.
    cache.record_feedback(p0.cache_key, p0.algorithm, 2.0)
    cache.record_feedback(p0.cache_key, other, 0.010)
    p1 = plan(a, b, profile=default_profile(), cache=cache)
    assert p1.source == "feedback"
    assert p1.algorithm == other
    # Running mean: a second, slower sample moves but keeps the winner.
    cache.record_feedback(p0.cache_key, other, 0.030)
    rec = cache.get(p0.cache_key)
    assert rec["feedback"][other]["count"] == 2
    assert rec["feedback"][other]["mean_s"] == pytest.approx(0.020)


def test_feedback_rejects_garbage(operands):
    a, b = operands
    cache = PlanCache()
    p = plan(a, b, profile=default_profile(), cache=cache)
    for junk in (0.0, -1.0, float("nan"), float("inf")):
        cache.record_feedback(p.cache_key, p.algorithm, junk)
    assert cache.get(p.cache_key)["feedback"] == {}


# -- algorithm="auto" bit-identity ------------------------------------------


def test_auto_is_bit_identical_to_direct(operands):
    a, b = operands
    for name in available_semirings():
        auto = repro.multiply(a.to_csr(), b, algorithm="auto", semiring=name)
        p = plan(a, b, semiring=name)
        direct = repro.multiply(
            a.to_csr(), b, algorithm=p.algorithm, semiring=name
        )
        assert np.array_equal(auto.indptr, direct.indptr), name
        assert np.array_equal(auto.indices, direct.indices), name
        assert np.array_equal(auto.data, direct.data), name


def test_explicit_plan_is_executable(operands):
    a, b = operands
    p = plan(a, b, profile=default_profile(), cache=PlanCache())
    via_plan = repro.multiply(a.to_csr(), b, algorithm=p)
    direct = repro.multiply(a.to_csr(), b, algorithm=p.algorithm)
    assert np.array_equal(via_plan.indptr, direct.indptr)
    assert np.array_equal(via_plan.data, direct.data)


# -- dispatch registry ------------------------------------------------------


def test_dispatch_error_lists_algorithms():
    with pytest.raises(DispatchError, match="available") as exc_info:
        get_algorithm("nonsense")
    msg = str(exc_info.value)
    for name in repro.available_algorithms():
        assert name in msg
    # Legacy handlers catch KeyError; library handlers catch ReproError.
    assert isinstance(exc_info.value, KeyError)
    assert isinstance(exc_info.value, ReproError)


def test_algorithm_metadata_exposes_planner_fields():
    meta = algorithm_metadata()
    assert set(meta) == set(repro.available_algorithms())
    for name, m in meta.items():
        assert {"supports_config", "supports_process", "supports_masked"} <= set(m)
    assert meta["pb"]["supports_process"] is True
    assert meta["pb"]["supports_config"] is True
    assert meta["heap"]["supports_process"] is False


# -- PBConfig fields + single-source nbins ----------------------------------


def test_config_validates_planner_fields():
    cfg = PBConfig(plan_cache_dir="/tmp/x", calibration="off")
    assert cfg.plan_cache_dir == "/tmp/x" and cfg.calibration == "off"
    with pytest.raises(ConfigError, match="calibration"):
        PBConfig(calibration="sometimes")
    with pytest.raises(ConfigError, match="plan_cache_dir"):
        PBConfig(plan_cache_dir=123)


def test_symbolic_nbins_comes_from_resolve_nbins():
    b = rmat(9, 8, seed=2).to_csr()
    a = b.to_csc()
    for cfg in (PBConfig(), PBConfig(nbins=64), PBConfig(l2_target_bytes=1 << 16)):
        sym = symbolic_phase(a, b, cfg)
        resolved = resolve_nbins(sym.flop, a.shape[0], cfg)
        # symbolic_phase only snaps the resolved count to the effective
        # number of contiguous row ranges — never re-derives policy.
        rows_per_bin = max(1, -(-a.shape[0] // resolved))
        assert sym.nbins == max(1, -(-a.shape[0] // rows_per_bin))


def test_resolve_nbins_policy():
    assert resolve_nbins(10**9, 1 << 20) == 2048  # upper clamp
    assert resolve_nbins(1, 1 << 20) == 1024  # lower clamp
    assert resolve_nbins(10**9, 100) == 100  # never exceeds nrows
    assert resolve_nbins(0, 0) == 1
    assert resolve_nbins(10**6, 1 << 20, PBConfig(nbins=4096)) == 4096


@pytest.mark.parallel
def test_serial_and_process_executors_resolve_identical_nbins():
    if not repro.process_backend_available():
        pytest.skip("process backend unavailable")
    b = erdos_renyi(1 << 9, 8, seed=5, fmt="csr")
    a = b.to_csc()
    serial = pb_spgemm_detailed(a, b, config=PBConfig())
    proc = pb_spgemm_detailed(
        a, b, config=PBConfig(executor="process", nthreads=2)
    )
    assert proc.executor_used == "process"
    assert serial.symbolic.nbins == proc.symbolic.nbins
    assert serial.layout.nbins == proc.layout.nbins
    assert np.array_equal(serial.c.indptr, proc.c.indptr)
    assert np.array_equal(serial.c.data, proc.c.data)


# -- calibration ------------------------------------------------------------


def test_quick_calibration_is_fast_and_sane():
    import time

    t0 = time.perf_counter()
    prof = calibrate(quick=True, measure_pool=False)
    elapsed = time.perf_counter() - t0
    assert elapsed < 10.0, f"quick calibration took {elapsed:.1f}s"
    assert prof.source == "calibrated" and prof.quick is True
    for f in (
        prof.copy_gbs,
        prof.triad_gbs,
        prof.scatter_gbs,
        prof.radix_mtuples_s,
        prof.effective_clock_ghz,
        prof.dram_latency_ns,
    ):
        assert f > 0
    assert len(prof.fingerprint()) == 12


def test_profile_roundtrip_and_fingerprint_stability(tmp_path):
    prof = default_profile()
    save_profile(prof, tmp_path)
    loaded = load_profile(tmp_path)
    assert loaded == prof
    # created_unix must not participate in the fingerprint.
    import dataclasses

    resaved = dataclasses.replace(prof, created_unix=12345.0)
    assert resaved.fingerprint() == prof.fingerprint()


def test_calibrated_profile_feeds_machine_spec():
    prof = calibrate(quick=True, measure_pool=False)
    spec = prof.machine_spec()
    assert spec.stream_single.copy == pytest.approx(prof.copy_gbs)
    assert spec.clock_ghz == pytest.approx(prof.effective_clock_ghz)
    assert spec.dram_latency_ns == pytest.approx(prof.dram_latency_ns)
    # Preset profiles hand back the preset untouched.
    from repro.machine.presets import get_machine

    assert default_profile("laptop").machine_spec() == get_machine("laptop")


# -- CLI smoke --------------------------------------------------------------


@pytest.fixture()
def mtx_path(tmp_path):
    from repro.matrix.io import write_matrix_market

    path = tmp_path / "a.mtx"
    write_matrix_market(erdos_renyi(128, 4, seed=1, fmt="csr"), path)
    return str(path)


def test_cli_plan_smoke(mtx_path, capsys):
    from repro.cli import main

    assert main(["plan", mtx_path]) == 0
    out = capsys.readouterr().out
    assert "plan:" in out and "candidates:" in out
    assert main(["plan", mtx_path, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["algorithm"] in repro.available_algorithms()
    assert payload["sketch"]["flop"] > 0


def test_cli_calibrate_smoke(tmp_path, capsys):
    from repro.cli import main

    cache_dir = tmp_path / "state"
    rc = main(
        ["calibrate", "--quick", "--no-pool", "--cache-dir", str(cache_dir)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "fingerprint" in out and "saved" in out
    assert load_profile(cache_dir) is not None


def test_cli_multiply_auto_smoke(mtx_path, capsys):
    from repro.cli import main

    assert main(["multiply", mtx_path, "--algorithm", "auto"]) == 0
    assert "algorithm=auto" in capsys.readouterr().out
