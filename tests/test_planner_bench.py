"""Smoke coverage for the planner regret harness (``@pytest.mark.perf``).

Tier-1-safe: runs ``benchmarks/bench_planner_regret.py --quick`` on
small inputs and validates the JSON schema — of the fresh quick run and
of the committed repo-root ``BENCH_planner.json`` artifact — so a
schema drift or a silently-broken planner path fails fast without
timing anything at full scale.  The committed full-run artifact is also
held to the PR's acceptance bars: mean feedback regret ≤ 1.25× the
oracle-best and warm planner overhead ≤ 5% of the multiply.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_planner_regret", REPO_ROOT / "benchmarks" / "bench_planner_regret.py"
)
bench_planner = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_planner)

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("planner") / "BENCH_planner.json"
    assert bench_planner.main(["--quick", "--reps", "1", "--output", str(out)]) == 0
    return json.loads(out.read_text())


def test_quick_run_validates(quick_report):
    data = bench_planner.validate_report(quick_report)
    assert data["meta"]["quick"] is True
    assert len(data["workloads"]) == 3  # ER, R-MAT, surrogate
    for w in data["workloads"]:
        r = data["results"][w]
        # With every measured runtime recorded, the re-plan must pick
        # the measured winner: feedback regret is exactly 1.0.  The
        # plan source is "feedback" when the measurements overturned
        # the model's pick and "cache" when the model already agreed
        # with the oracle (feedback only overrides a *wrong* answer).
        assert r["feedback_pick"] == r["oracle_algorithm"]
        assert r["feedback_regret"] == pytest.approx(1.0)
        assert r["feedback_source"] in ("feedback", "cache")


def test_quick_run_times_every_algorithm(quick_report):
    import repro

    for w in quick_report["workloads"]:
        alg_s = quick_report["results"][w]["algorithm_s"]
        assert set(alg_s) == set(repro.available_algorithms())
        assert all(v > 0 for v in alg_s.values())


def test_committed_artifact_is_valid():
    path = REPO_ROOT / "BENCH_planner.json"
    assert path.exists(), "BENCH_planner.json must be committed at the repo root"
    data = bench_planner.validate_report(json.loads(path.read_text()))
    assert data["meta"]["quick"] is False, "the committed artifact is a full run"
    acc = data["acceptance"]
    # The PR's acceptance bars, pinned so a planner regression that
    # slips into a refreshed artifact is caught at review time.
    assert acc["mean_feedback_regret"] <= 1.25
    assert acc["max_overhead_fraction"] <= 0.05
    assert acc["feedback_converged"] is True


def test_validate_report_rejects_bad_payloads(quick_report):
    with pytest.raises(ValueError, match="schema_version"):
        bench_planner.validate_report({**quick_report, "schema_version": 99})
    with pytest.raises(ValueError, match="missing top-level"):
        bench_planner.validate_report(
            {k: v for k, v in quick_report.items() if k != "acceptance"}
        )
    broken = json.loads(json.dumps(quick_report))
    w = broken["workloads"][0]
    broken["results"][w]["oracle_s"] = 0
    with pytest.raises(ValueError, match="positive"):
        bench_planner.validate_report(broken)
    broken2 = json.loads(json.dumps(quick_report))
    broken2["results"][w]["model_pick"] = "nonsense"
    with pytest.raises(ValueError, match="registered"):
        bench_planner.validate_report(broken2)
    broken3 = json.loads(json.dumps(quick_report))
    del broken3["results"][w]["algorithm_s"]["pb"]
    with pytest.raises(ValueError, match="every registered"):
        bench_planner.validate_report(broken3)
