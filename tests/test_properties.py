"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import PBConfig, pb_spgemm, plan_bins, pack_keys, unpack_keys
from repro.kernels import spgemm, scipy_spgemm_oracle
from repro.kernels.compress import compress_keyed
from repro.kernels.radix import radix_argsort, radix_sort_keys
from repro.matrix import COOMatrix
from repro.matrix.ops import allclose
from repro.costmodel.roofline import (
    ai_column_lower_bound,
    ai_esc_lower_bound,
    ai_upper_bound,
)
from repro.simulate.threads import lpt_makespan, static_block_makespan

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def coo_matrices(draw, max_dim=24, max_nnz=80):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        hnp.arrays(np.int64, nnz, elements=st.integers(0, m - 1))
    )
    cols = draw(
        hnp.arrays(np.int64, nnz, elements=st.integers(0, n - 1))
    )
    vals = draw(
        hnp.arrays(
            np.float64,
            nnz,
            elements=st.floats(-8, 8, allow_nan=False, width=32),
        )
    )
    return COOMatrix((m, n), rows, cols, vals)


@st.composite
def matrix_pairs(draw):
    a = draw(coo_matrices())
    n = draw(st.integers(1, 24))
    nnz = draw(st.integers(0, 80))
    k = a.shape[1]
    rows = draw(hnp.arrays(np.int64, nnz, elements=st.integers(0, k - 1)))
    cols = draw(hnp.arrays(np.int64, nnz, elements=st.integers(0, n - 1)))
    vals = draw(
        hnp.arrays(np.float64, nnz, elements=st.floats(-8, 8, allow_nan=False, width=32))
    )
    b = COOMatrix((k, n), rows, cols, vals)
    return a, b


class TestFormatProperties:
    @SETTINGS
    @given(coo_matrices())
    def test_coalesce_preserves_dense(self, coo):
        np.testing.assert_allclose(
            coo.coalesce().to_dense(), coo.to_dense(), atol=1e-9
        )

    @SETTINGS
    @given(coo_matrices())
    def test_csr_roundtrip(self, coo):
        np.testing.assert_allclose(
            coo.to_csr().to_coo().to_dense(), coo.to_dense(), atol=1e-9
        )

    @SETTINGS
    @given(coo_matrices())
    def test_csc_roundtrip(self, coo):
        np.testing.assert_allclose(
            coo.to_csc().to_coo().to_dense(), coo.to_dense(), atol=1e-9
        )

    @SETTINGS
    @given(coo_matrices())
    def test_csr_csc_agree(self, coo):
        assert allclose(coo.to_csr(), coo.to_csc())

    @SETTINGS
    @given(coo_matrices())
    def test_transpose_involution(self, coo):
        np.testing.assert_allclose(
            coo.transpose().transpose().to_dense(), coo.to_dense()
        )

    @SETTINGS
    @given(coo_matrices())
    def test_csr_canonical(self, coo):
        coo.to_csr()._validate()


class TestSortCompressProperties:
    @SETTINGS
    @given(
        hnp.arrays(
            np.uint32,
            st.integers(0, 300),
            elements=st.integers(0, 2**32 - 1),
        )
    )
    def test_radix_sorts(self, keys):
        out, _ = radix_sort_keys(keys)
        np.testing.assert_array_equal(out, np.sort(keys))

    @SETTINGS
    @given(
        hnp.arrays(np.uint64, st.integers(0, 200), elements=st.integers(0, 2**40)),
    )
    def test_radix_argsort_is_permutation(self, keys):
        order, _ = radix_argsort(keys)
        assert sorted(order.tolist()) == list(range(len(keys)))

    @SETTINGS
    @given(
        hnp.arrays(np.uint32, st.integers(1, 200), elements=st.integers(0, 50)),
    )
    def test_compress_total_preserved(self, keys):
        keys = np.sort(keys)
        vals = np.ones(len(keys))
        ck, cv = compress_keyed(keys, vals)
        assert cv.sum() == pytest.approx(len(keys))
        assert len(ck) == len(np.unique(keys))
        assert np.all(np.diff(ck.astype(np.int64)) > 0)


class TestKeyPackingProperties:
    @SETTINGS
    @given(
        st.integers(1, 1 << 20),
        st.integers(1, 1 << 20),
        st.integers(1, 512),
        st.data(),
    )
    def test_pack_unpack_bijective(self, nrows, ncols, nbins, data):
        nbins = min(nbins, nrows)
        rows_per_bin = max(1, -(-nrows // nbins))
        layout = plan_bins(nrows, ncols, nbins, rows_per_bin)
        n = data.draw(st.integers(1, 50))
        rows = data.draw(hnp.arrays(np.int64, n, elements=st.integers(0, nrows - 1)))
        cols = data.draw(hnp.arrays(np.int64, n, elements=st.integers(0, ncols - 1)))
        keys = pack_keys(layout, rows, cols)
        binid = layout.bin_of_rows(rows)
        for b in np.unique(binid):
            mask = binid == b
            r2, c2 = unpack_keys(layout, keys[mask], int(b))
            np.testing.assert_array_equal(r2, rows[mask])
            np.testing.assert_array_equal(c2, cols[mask])


class TestSpGEMMProperties:
    @SETTINGS
    @given(matrix_pairs())
    def test_pb_matches_scipy(self, pair):
        a, b = pair
        a_csc, b_csr = a.to_csc(), b.to_csr()
        assert allclose(pb_spgemm(a_csc, b_csr), scipy_spgemm_oracle(a_csc, b_csr))

    @SETTINGS
    @given(matrix_pairs(), st.sampled_from(["heap", "hash", "hashvec", "spa", "esc_column"]))
    def test_baselines_match_scipy(self, pair, alg):
        a, b = pair
        a_csc, b_csr = a.to_csc(), b.to_csr()
        assert allclose(
            spgemm(a_csc, b_csr, algorithm=alg), scipy_spgemm_oracle(a_csc, b_csr)
        )

    @SETTINGS
    @given(matrix_pairs(), st.integers(1, 64))
    def test_pb_invariant_to_nbins(self, pair, nbins):
        a, b = pair
        a_csc, b_csr = a.to_csc(), b.to_csr()
        c1 = pb_spgemm(a_csc, b_csr)
        c2 = pb_spgemm(a_csc, b_csr, config=PBConfig(nbins=nbins))
        assert allclose(c1, c2)

    @SETTINGS
    @given(coo_matrices(max_dim=16, max_nnz=50))
    def test_identity_neutral(self, coo):
        from repro.matrix import CSCMatrix

        e = CSCMatrix.identity(coo.shape[0])
        c = pb_spgemm(e, coo.to_csr())
        assert allclose(c, coo.to_csr())


class TestModelProperties:
    @SETTINGS
    @given(st.floats(1.0, 100.0))
    def test_ai_bound_ordering(self, cf):
        assert ai_esc_lower_bound(cf) < ai_column_lower_bound(cf) < ai_upper_bound(cf)

    @SETTINGS
    @given(st.floats(1.0, 100.0), st.floats(1.0, 100.0))
    def test_ai_monotone(self, cf1, cf2):
        lo, hi = sorted((cf1, cf2))
        assert ai_upper_bound(lo) <= ai_upper_bound(hi)
        assert ai_esc_lower_bound(lo) <= ai_esc_lower_bound(hi)

    @SETTINGS
    @given(
        hnp.arrays(np.float64, st.integers(1, 64), elements=st.floats(0, 100)),
        st.integers(1, 16),
    )
    def test_makespan_bounds(self, work, t):
        total = work.sum()
        for makespan in (lpt_makespan(work, t), static_block_makespan(work, t)):
            assert makespan >= total / t - 1e-9
            assert makespan <= total + 1e-9
        # Graham's bound: LPT is within 4/3 of the optimal makespan, and
        # the optimum is no worse than one contiguous chunking.  (Plain
        # LPT <= static does NOT hold — e.g. work [2,38,38,0,39,39] at
        # t=2 gives LPT 79 vs static 78.)
        assert lpt_makespan(work, t) <= (4 / 3) * static_block_makespan(work, t) + 1e-9

    @SETTINGS
    @given(st.integers(1, 48), st.integers(1, 48))
    def test_stream_bandwidth_monotone(self, t1, t2):
        from repro.machine import skylake_sp, stream_bandwidth

        m = skylake_sp()
        lo, hi = sorted((min(t1, 24), min(t2, 24)))
        assert stream_bandwidth(m, "triad", 1, lo) <= stream_bandwidth(m, "triad", 1, hi)
