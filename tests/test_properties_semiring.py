"""Property-based semiring-law tests (hypothesis).

Each registered semiring must satisfy the algebraic laws the ESC
pipeline silently relies on: ⊕ associativity/commutativity (compress
merges runs in arbitrary grouping), the ⊕-identity annihilating
behaviour, and consistency between ``add``, ``reduceat`` and a serial
fold.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.semiring import available_semirings, get_semiring

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

finite = st.floats(-100, 100, allow_nan=False, width=32)
SEMIRINGS = sorted(available_semirings())


@pytest.mark.parametrize("name", SEMIRINGS)
class TestAddLaws:
    @SETTINGS
    @given(a=finite, b=finite, c=finite)
    def test_add_associative(self, name, a, b, c):
        sr = get_semiring(name)
        x = np.array([a]), np.array([b]), np.array([c])
        left = sr.add(sr.add(x[0], x[1]), x[2])[0]
        right = sr.add(x[0], sr.add(x[1], x[2]))[0]
        assert left == pytest.approx(right, rel=1e-9, abs=1e-9)

    @SETTINGS
    @given(a=finite, b=finite)
    def test_add_commutative(self, name, a, b):
        sr = get_semiring(name)
        assert sr.add(np.array([a]), np.array([b]))[0] == pytest.approx(
            sr.add(np.array([b]), np.array([a]))[0], rel=1e-12, abs=1e-12
        )

    @SETTINGS
    @given(a=finite)
    def test_identity_neutral(self, name, a):
        sr = get_semiring(name)
        ident = np.array([sr.add_identity])
        out = sr.add(np.array([a]), ident)[0]
        if name == "or_and":
            # boolean domain: identity is neutral on {0,1} values only
            a01 = float(a != 0)
            assert sr.add(np.array([a01]), ident)[0] == a01
        else:
            assert out == pytest.approx(a)


@pytest.mark.parametrize("name", SEMIRINGS)
class TestReduceatConsistency:
    @SETTINGS
    @given(
        vals=hnp.arrays(np.float64, st.integers(1, 60), elements=finite),
        data=st.data(),
    )
    def test_reduceat_matches_fold(self, name, vals, data):
        sr = get_semiring(name)
        if name == "or_and":
            vals = (vals != 0).astype(np.float64)
        n_segments = data.draw(st.integers(1, min(len(vals), 8)))
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(1, len(vals) - 1) if len(vals) > 1 else st.nothing(),
                    max_size=n_segments - 1,
                    unique=True,
                )
            )
        ) if len(vals) > 1 else []
        starts = np.array([0] + cuts, dtype=np.int64)
        got = sr.reduceat(vals, starts)
        bounds = list(starts) + [len(vals)]
        for i in range(len(starts)):
            seg = vals[bounds[i] : bounds[i + 1]]
            acc = seg[0]
            for v in seg[1:]:
                acc = sr.add(np.array([acc]), np.array([v]))[0]
            assert got[i] == pytest.approx(acc, rel=1e-9, abs=1e-9)

    @SETTINGS
    @given(vals=hnp.arrays(np.float64, st.integers(1, 40), elements=finite))
    def test_single_segment_equals_full_fold(self, name, vals):
        sr = get_semiring(name)
        if name == "or_and":
            vals = (vals != 0).astype(np.float64)
        got = sr.reduceat(vals, np.array([0]))[0]
        acc = vals[0]
        for v in vals[1:]:
            acc = sr.add(np.array([acc]), np.array([v]))[0]
        assert got == pytest.approx(acc, rel=1e-9, abs=1e-9)


class TestMultiplyShapes:
    @SETTINGS
    @given(
        a=hnp.arrays(np.float64, 16, elements=finite),
        b=hnp.arrays(np.float64, 16, elements=finite),
    )
    def test_multiply_elementwise_shape(self, a, b):
        for name in SEMIRINGS:
            out = get_semiring(name).multiply(a, b)
            assert out.shape == a.shape

    @SETTINGS
    @given(a=finite, b=finite)
    def test_plus_pair_always_one(self, a, b):
        sr = get_semiring("plus_pair")
        assert sr.multiply(np.array([a]), np.array([b]))[0] == 1.0
