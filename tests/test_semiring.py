"""Unit tests for the semiring module."""

import numpy as np
import pytest

from repro.semiring import (
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_PAIR,
    PLUS_TIMES,
    available_semirings,
    get_semiring,
)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_semiring("plus_times") is PLUS_TIMES
        assert get_semiring("min_plus") is MIN_PLUS

    def test_lookup_passthrough(self):
        assert get_semiring(PLUS_TIMES) is PLUS_TIMES

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            get_semiring("nope")

    def test_available(self):
        names = available_semirings()
        assert "plus_times" in names and "or_and" in names
        assert names == tuple(sorted(names))


class TestOperations:
    def test_plus_times(self):
        a, b = np.array([2.0, 3.0]), np.array([4.0, 5.0])
        np.testing.assert_allclose(PLUS_TIMES.multiply(a, b), [8.0, 15.0])
        np.testing.assert_allclose(PLUS_TIMES.add(a, b), [6.0, 8.0])

    def test_min_plus(self):
        a, b = np.array([2.0, 3.0]), np.array([4.0, 1.0])
        np.testing.assert_allclose(MIN_PLUS.multiply(a, b), [6.0, 4.0])
        np.testing.assert_allclose(MIN_PLUS.add(a, b), [2.0, 1.0])
        assert MIN_PLUS.add_identity == np.inf

    def test_max_times(self):
        a, b = np.array([2.0, -3.0]), np.array([4.0, 5.0])
        np.testing.assert_allclose(MAX_TIMES.add(a, b), [4.0, 5.0])

    def test_or_and(self):
        a, b = np.array([1.0, 0.0, 2.0]), np.array([1.0, 1.0, 0.0])
        np.testing.assert_allclose(OR_AND.multiply(a, b), [1.0, 0.0, 0.0])

    def test_plus_pair(self):
        a, b = np.array([7.0, -2.0]), np.array([0.5, 8.0])
        np.testing.assert_allclose(PLUS_PAIR.multiply(a, b), [1.0, 1.0])

    def test_reduceat_sums_segments(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        starts = np.array([0, 2])
        np.testing.assert_allclose(PLUS_TIMES.reduceat(vals, starts), [3.0, 7.0])

    def test_reduceat_min(self):
        vals = np.array([3.0, 1.0, 9.0, 5.0])
        starts = np.array([0, 2])
        np.testing.assert_allclose(MIN_PLUS.reduceat(vals, starts), [1.0, 5.0])

    def test_reduceat_or_preserves_dtype(self):
        vals = np.array([1.0, 0.0, 1.0])
        out = OR_AND.reduceat(vals, np.array([0, 1]))
        assert out.dtype == vals.dtype
        np.testing.assert_allclose(out, [1.0, 1.0])

    def test_reduceat_empty(self):
        out = PLUS_TIMES.reduceat(np.array([]), np.array([], dtype=int))
        assert len(out) == 0

    def test_is_annihilated(self):
        mask = PLUS_TIMES.is_annihilated(np.array([0.0, 1.0, 0.0]))
        assert mask.tolist() == [True, False, True]
