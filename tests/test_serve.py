"""Multiply service end-to-end (``@pytest.mark.serve``).

The serve smoke contract from the ISSUE: a server under >= 32
concurrent mixed-shape requests answers every one of them (success or
clean admission reject), every product is bit-identical to a direct
``repro.multiply``, the ``stats`` op exposes the batching counters,
shutdown is clean, and no ``/dev/shm`` segment outlives the server.
Protocol and scheduler units are covered without a server.
"""

from __future__ import annotations

import asyncio
import glob
import struct

import numpy as np
import pytest

import repro
from repro import PBConfig
from repro.parallel import process_backend_available
from repro.serve import (
    BatchScheduler,
    MultiplyServer,
    RemoteError,
    RequestRejected,
    ServeClient,
    ServeConfig,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_matrix,
    encode_matrix,
    read_frame,
)
from repro.serve.scheduler import ServeRequest

pytestmark = [pytest.mark.serve, pytest.mark.parallel]

needs_pool = pytest.mark.skipif(
    not process_backend_available(), reason="POSIX shared memory unavailable"
)

SERVER_PB = dict(executor="process", nthreads=2)


def _shm_names():
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/wnsm_*"))


def _mix():
    out = []
    for scale, ef, seed in ((5, 3, 1), (6, 4, 2), (7, 4, 3)):
        b = repro.erdos_renyi(1 << scale, ef, seed=seed, fmt="csr")
        out.append((b.to_csc(), b))
    return out


def _identical(ref, got):
    return bool(
        np.array_equal(ref.indptr, got.indptr)
        and np.array_equal(ref.indices, got.indices)
        and ref.data.tobytes() == got.data.tobytes()
    )


# ---------------------------------------------------------------------------
# protocol (no server)
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_matrix_roundtrip(self):
        b = repro.erdos_renyi(64, 4, seed=3, fmt="csr")
        for operand in (b, b.to_csc()):
            wire = encode_matrix(operand)
            back = decode_matrix(wire)
            assert _identical(b, back)

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_matrix({"format": "coo"})
        wire = encode_matrix(repro.erdos_renyi(8, 2, seed=1, fmt="csr"))
        wire["indptr"] = "!!!not-base64!!!"
        with pytest.raises(ProtocolError):
            decode_matrix(wire)

    def test_read_frame_errors(self):
        async def scenario():
            # Clean EOF -> None.
            r = asyncio.StreamReader()
            r.feed_eof()
            assert await read_frame(r) is None
            # Oversize header -> ProtocolError.
            r = asyncio.StreamReader()
            r.feed_data(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                await read_frame(r)
            # Connection dropped mid-frame -> ProtocolError.
            r = asyncio.StreamReader()
            r.feed_data(struct.pack(">I", 100) + b'{"tru')
            r.feed_eof()
            with pytest.raises(ProtocolError, match="mid-frame"):
                await read_frame(r)
            # Bad JSON -> ProtocolError.
            body = b"not json"
            r = asyncio.StreamReader()
            r.feed_data(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="JSON"):
                await read_frame(r)

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# scheduler (no server)
# ---------------------------------------------------------------------------

def _request(rid, semiring="plus_times", algorithm="pb", tuples=10):
    return ServeRequest(
        id=rid,
        a_csc=None,
        b_csr=None,
        algorithm=algorithm,
        semiring=semiring,
        config=None,
        tuples=tuples,
    )


class TestScheduler:
    def test_wave_formation_skips_incompatible(self):
        async def scenario():
            sched = BatchScheduler(None, max_batch=8)
            for req in (
                _request(1),
                _request(2, semiring="min_plus"),
                _request(3),
                _request(4, algorithm="hash"),
                _request(5),
            ):
                assert sched.submit(req) is None
            wave = sched._next_wave()
            assert [r.id for r in wave.requests] == [1, 3, 5]
            # Unmatched requests keep arrival order for the next waves.
            assert [r.id for r in sched._pending] == [2, 4]
            assert sched._next_wave().requests[0].id == 2
            # Non-fusable head never drains followers.
            assert sched.submit(_request(6, algorithm="hash")) is None
            wave = sched._next_wave()
            assert [r.id for r in wave.requests] == [4]

        asyncio.run(scenario())

    def test_batch_budgets(self):
        async def scenario():
            sched = BatchScheduler(None, max_batch=2, max_batch_tuples=25)
            for rid in (1, 2, 3):
                assert sched.submit(_request(rid)) is None
            assert len(sched._next_wave().requests) == 2  # max_batch
            sched = BatchScheduler(None, max_batch=8, max_batch_tuples=25)
            for rid in (1, 2, 3):
                assert sched.submit(_request(rid)) is None
            assert len(sched._next_wave().requests) == 2  # tuple budget

        asyncio.run(scenario())

    def test_admission_rejects(self):
        async def scenario():
            sched = BatchScheduler(None, max_pending=2, max_pending_tuples=100)
            assert sched.submit(_request(1)) is None
            assert sched.submit(_request(2)) is None
            rej = sched.submit(_request(3))
            assert rej is not None and rej.retry_after_s > 0
            # Tuple-budget reject, but an oversized lone request on an
            # empty queue is admitted (no livelock).
            sched = BatchScheduler(None, max_pending=8, max_pending_tuples=100)
            assert sched.submit(_request(1, tuples=500)) is None
            assert sched.submit(_request(2, tuples=500)) is not None
            # Closed scheduler rejects and drains.
            sched.close()
            assert sched.submit(_request(3)).retry_after_s == 0.0

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# end to end
# ---------------------------------------------------------------------------

@needs_pool
class TestServerEndToEnd:
    def test_concurrent_mixed_shapes(self):
        """32+ concurrent mixed-shape/semiring requests: all answered,
        bit-identical, batched, observable, and shm-clean."""
        pairs = _mix()
        refs = {
            (i, sr): repro.multiply(a, b, semiring=sr, config=PBConfig())
            for i, (a, b) in enumerate(pairs)
            for sr in ("plus_times", "min_plus")
        }
        before = _shm_names()

        async def scenario():
            server = await MultiplyServer(
                PBConfig(**SERVER_PB), ServeConfig(port=0)
            ).start()
            try:
                async with await ServeClient.connect(*server.address) as client:
                    assert await client.ping()

                    async def one(i):
                        key = (i % len(pairs), "min_plus" if i % 3 == 0 else "plus_times")
                        a, b = pairs[key[0]]
                        reply = await client.multiply(a, b, semiring=key[1])
                        assert _identical(refs[key], reply.c)
                        assert reply.timings["queue_wait_s"] >= 0
                        assert "phase_seconds" in reply.timings
                        assert reply.batch["size"] >= 1 and "id" in reply.batch
                        assert reply.plan["algorithm"] == "pb"
                        return reply

                    replies = await asyncio.gather(*(one(i) for i in range(36)))
                    stats = await client.stats()
                    return replies, stats
            finally:
                await server.close()

        replies, stats = asyncio.run(scenario())
        counters = stats["server"]["counters"]
        assert counters["responses_ok"] >= 36
        assert counters["responses_error"] == 0
        assert counters["batches"] >= 1
        # Single compute thread + 36 concurrent submissions: waves of
        # two or more must have formed, and they execute fused.
        assert counters["fused_batches"] >= 1
        assert counters["batched_requests"] >= 2
        assert any(r.batch["fused"] for r in replies)
        assert stats["server"]["latency"]["p99_s"] > 0
        assert stats["session"]["multiplies"] >= 1
        assert stats["scheduler"]["waves_dispatched"] >= 1
        assert _shm_names() - before == set()

    def test_backpressure_and_retry(self):
        b = repro.erdos_renyi(64, 3, seed=5, fmt="csr")
        a = b.to_csc()

        async def scenario():
            server = await MultiplyServer(
                PBConfig(**SERVER_PB), ServeConfig(port=0, max_pending=2)
            ).start()
            try:
                async with await ServeClient.connect(*server.address) as client:
                    await client.multiply(a, b)  # warm off the burst
                    outcomes = await asyncio.gather(
                        *(client.multiply(a, b) for _ in range(24)),
                        return_exceptions=True,
                    )
                    drained = await asyncio.gather(
                        *(client.multiply_retrying(a, b, attempts=64) for _ in range(6))
                    )
                    stats = await client.stats()
                    return outcomes, drained, stats
            finally:
                await server.close()

        outcomes, drained, stats = asyncio.run(scenario())
        ok = [o for o in outcomes if not isinstance(o, BaseException)]
        rejected = [o for o in outcomes if isinstance(o, RequestRejected)]
        assert len(ok) + len(rejected) == 24  # no other failure mode
        assert rejected and all(o.retry_after_s > 0 for o in rejected)
        assert len(drained) == 6
        assert stats["server"]["counters"]["rejected"] >= len(rejected)

    def test_bad_requests_and_shutdown(self):
        b = repro.erdos_renyi(32, 3, seed=7, fmt="csr")
        tall = repro.erdos_renyi(16, 2, seed=8, fmt="csr")

        async def scenario():
            server = await MultiplyServer(
                PBConfig(**SERVER_PB), ServeConfig(port=0)
            ).start()
            client = await ServeClient.connect(*server.address)
            try:
                with pytest.raises(RemoteError, match="bad_request"):
                    await client.multiply(tall, b)  # shape mismatch
                with pytest.raises(RemoteError, match="bad_request"):
                    await client.multiply(b, b, semiring="no_such_semiring")
                with pytest.raises(RemoteError, match="bad_request"):
                    await client.multiply(b, b, algorithm="no_such_algorithm")
                raw = await client._call({"op": "frobnicate"})
                assert not raw["ok"] and "unknown op" in raw["error"]["message"]
                # The connection survives every bad request.
                reply = await client.multiply(b, b)
                assert _identical(repro.multiply(b, b, config=PBConfig()), reply.c)
                await client.shutdown()
                await asyncio.wait_for(server.serve_forever(), timeout=10)
            finally:
                await client.close()

        asyncio.run(scenario())

    def test_plan_provenance_auto(self):
        b = repro.erdos_renyi(64, 4, seed=9, fmt="csr")

        async def scenario():
            server = await MultiplyServer(
                PBConfig(**SERVER_PB), ServeConfig(port=0)
            ).start()
            try:
                async with await ServeClient.connect(*server.address) as client:
                    return await client.multiply(b, b, algorithm="auto")
            finally:
                await server.close()

        reply = asyncio.run(scenario())
        assert reply.plan["source"] in ("model", "cache", "feedback")
        chosen = reply.plan["algorithm"]
        assert chosen in repro.available_algorithms()
        # The served auto result is bit-identical to invoking the chosen
        # algorithm directly (the repro.multiply auto contract).
        assert _identical(repro.multiply(b, b, algorithm=chosen), reply.c)
