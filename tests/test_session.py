"""Tests of persistent execution sessions (``repro.session``).

The session contract: one warm worker pool reused across multiplies
(spawned once, grown on demand), shared-memory arenas recycled through
the session's :class:`~repro.parallel.shm.ArenaPool` instead of being
allocated/unlinked per call, and — above all — products bit-identical
to ``executor="serial"`` for every registered semiring, pipelined or
barriered.
"""

import numpy as np
import pytest

import repro
from repro import PBConfig, Session
from repro.core.pb_spgemm import pb_spgemm_detailed
from repro.errors import ConfigError
from repro.generators import erdos_renyi, rmat
from repro.kernels.dispatch import algorithm_metadata
from repro.parallel import process_backend_available
from repro.parallel.executor import ProcessEngine
from repro.parallel.shm import ArenaPool
from repro.semiring import available_semirings

pytestmark = pytest.mark.session

needs_pool = pytest.mark.skipif(
    not process_backend_available(), reason="POSIX shared memory unavailable"
)

SEMIRINGS = sorted(available_semirings())


@pytest.fixture(scope="module")
def mats():
    return {
        "er": erdos_renyi(1 << 9, edge_factor=4, seed=11),
        "rmat": rmat(9, edge_factor=4, seed=7),
    }


def _proc_config(**kw):
    kw.setdefault("nbins", 16)
    kw.setdefault("nthreads", 2)
    kw.setdefault("executor", "process")
    return PBConfig(**kw)


def _assert_identical(serial, other):
    assert serial.shape == other.shape
    np.testing.assert_array_equal(serial.indptr, other.indptr)
    np.testing.assert_array_equal(serial.indices, other.indices)
    assert serial.data.tobytes() == other.data.tobytes()


# ---------------------------------------------------------------------------
# Bit-identity: the session changes when pools/buffers exist, never results
# ---------------------------------------------------------------------------

@needs_pool
@pytest.mark.parametrize("sr", SEMIRINGS)
def test_session_bit_identical_all_semirings(mats, sr):
    a = mats["er"]
    serial = repro.multiply(a, a, semiring=sr, config=PBConfig(nbins=16))
    with Session(_proc_config()) as s:
        warm1 = s.multiply(a, a, semiring=sr)
        warm2 = s.multiply(a, a, semiring=sr)  # recycled arenas
    _assert_identical(serial, warm1)
    _assert_identical(serial, warm2)


@needs_pool
@pytest.mark.parametrize("pipeline", ["pipelined", "barrier"])
def test_session_pipeline_modes_identical(mats, pipeline):
    a = mats["rmat"]
    serial = repro.multiply(a, a, config=PBConfig(nbins=16))
    with Session(_proc_config(pipeline=pipeline)) as s:
        c = s.multiply(a, a)
    _assert_identical(serial, c)


@needs_pool
@pytest.mark.parametrize("mapping", ["range", "modulo", "balanced"])
def test_session_bin_mappings_identical(mats, mapping):
    a = mats["er"]
    cfg = _proc_config(bin_mapping=mapping, pack_keys=(mapping != "modulo"))
    serial = repro.multiply(
        a, a, config=cfg.with_(executor="serial", nthreads=1)
    )
    with Session(cfg) as s:
        c = s.multiply(a, a)
    _assert_identical(serial, c)


# ---------------------------------------------------------------------------
# Warm pool: spawned once, reused, grown on demand
# ---------------------------------------------------------------------------

@needs_pool
def test_pool_spawned_once_across_multiplies(mats):
    a = mats["er"]
    with Session(_proc_config()) as s:
        assert not s.is_warm()  # lazy: nothing spawned yet
        for _ in range(3):
            s.multiply(a, a)
        assert s.is_warm()
        engine = s._engine
        assert engine.spawn_count == 1
        assert s.stats.multiplies == 3
        assert s.stats.engine_multiplies == 3
        assert s.multiply(a, a) is not None
        assert s._engine is engine  # same engine object throughout
    assert not s.is_warm()


@needs_pool
def test_pool_grows_never_shrinks(mats):
    a = mats["er"]
    with Session(_proc_config(nthreads=2)) as s:
        s.multiply(a, a)
        assert s._engine.nworkers == 2
        s.multiply(a, a, config=_proc_config(nthreads=3))
        assert s._engine.nworkers == 3
        assert s._engine.spawn_count == 2
        # A narrower request afterwards does not respawn.
        s.multiply(a, a, config=_proc_config(nthreads=2))
        assert s._engine.nworkers == 3
        assert s._engine.spawn_count == 2


@needs_pool
def test_warm_up_and_multiply_many(mats):
    a = mats["er"]
    serial = repro.multiply(a, a, config=PBConfig(nbins=16))
    with Session(_proc_config(), warm=True) as s:
        assert s.is_warm()
        out = s.multiply_many([(a, a), (a, a)])
    assert len(out) == 2
    for c in out:
        _assert_identical(serial, c)


@needs_pool
def test_arena_recycling_hits(mats):
    a = mats["er"]
    with Session(_proc_config()) as s:
        s.multiply(a, a)
        first = s.arena_pool.stats()
        s.multiply(a, a)
        s.multiply(a, a)
        after = s.arena_pool.stats()
    # Steady-state multiplies lease from the free lists, not the OS.
    assert after["hits"] > first["hits"]
    assert after["misses"] == first["misses"]
    # Every lease was returned, and close() unlinked what was parked.
    assert s.stats.arena_stats["released"] == s.stats.arena_stats["leases"]
    assert s.stats.arena_stats["unlinked"] == s.stats.arena_stats["misses"]


# ---------------------------------------------------------------------------
# Lifecycle and validation
# ---------------------------------------------------------------------------

@needs_pool
def test_engine_close_idempotent_and_safe_after_free_arenas(mats):
    """Satellite regression: close() after free_arenas(), then close()
    again, must be no-ops — the pb pipeline's finally block does exactly
    this sequence for engines it owns."""
    a = mats["er"].to_csc()
    b = mats["er"].to_csr()
    engine = ProcessEngine(2)
    res = pb_spgemm_detailed(a, b, config=_proc_config(), engine=engine)
    assert res.executor_used == "process"
    engine.free_arenas()
    engine.close()
    engine.close()  # second close: no-op, no raise
    assert engine._closed
    with pytest.raises(RuntimeError, match="closed"):
        engine.ensure_workers(4)


@needs_pool
def test_session_close_idempotent(mats):
    s = Session(_proc_config())
    s.multiply(mats["er"], mats["er"])
    s.close()
    s.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        s.engine_for()


def test_validate_session_rejects_serial_fallback_config():
    with pytest.raises(ConfigError, match="nthreads >= 2"):
        Session(PBConfig(executor="process", nthreads=1))
    # The same config is fine *outside* a session (documented fallback).
    assert PBConfig(executor="process", nthreads=1).executor == "process"


def test_session_with_serial_config_has_no_engine():
    with Session(PBConfig(nbins=16)) as s:
        a = erdos_renyi(1 << 8, edge_factor=4, seed=3)
        c = s.multiply(a, a)
        assert not s.is_warm()
        assert s.engine_for() is None
        assert s.stats.engine_multiplies == 0
    serial = repro.multiply(a, a, config=PBConfig(nbins=16))
    _assert_identical(serial, c)


def test_pipeline_config_validation():
    with pytest.raises(ConfigError, match="pipeline"):
        PBConfig(pipeline="bogus")
    with pytest.raises(ConfigError, match="executor='process'"):
        PBConfig(pipeline="pipelined")  # serial executor has no overlap
    assert PBConfig(executor="process", nthreads=2, pipeline="pipelined")


def test_supports_session_metadata():
    meta = algorithm_metadata()
    assert meta["pb"]["supports_session"] is True
    assert all("supports_session" in m for m in meta.values())
    assert meta["hash"]["supports_session"] is False


# ---------------------------------------------------------------------------
# ArenaPool unit behavior
# ---------------------------------------------------------------------------

@needs_pool
def test_arena_pool_size_classes_and_budget():
    assert ArenaPool.size_class(1) == ArenaPool.MIN_CLASS_BYTES
    assert ArenaPool.size_class(4097) == 8192
    assert ArenaPool.size_class(8192) == 8192
    pool = ArenaPool(max_cached_bytes=8192)
    seg, fresh = pool.lease(6000)
    assert fresh and seg.size >= 6000
    pool.release(seg)
    seg2, fresh2 = pool.lease(6000)
    assert not fresh2  # recycled, same size class
    pool.release(seg2)
    big, _ = pool.lease(100_000)
    pool.release(big)  # over budget with the parked 8k: unlinked
    assert pool.stats()["unlinked"] >= 1
    pool.close()
    pool.close()  # idempotent


@needs_pool
def test_session_auto_plan_prices_warm_pool(mats, tmp_path):
    """algorithm='auto' on a warm session keys and prices plans
    separately from cold calls."""
    from repro.planner import plan as make_plan
    from repro.planner.calibrate import default_profile

    a = mats["er"]
    cfg = _proc_config(plan_cache_dir=str(tmp_path))
    cold = make_plan(a.to_csc(), a.to_csr(), config=cfg)
    warm = make_plan(a.to_csc(), a.to_csr(), config=cfg, warm_pool=True)
    assert cold.cache_key != warm.cache_key
    assert warm.cache_key.endswith(":warm]")
    prof = default_profile()
    pb_cold = next(c for c in cold.candidates if c.algorithm == "pb")
    pb_warm = next(c for c in warm.candidates if c.algorithm == "pb")
    delta = pb_cold.predicted_seconds - pb_warm.predicted_seconds
    assert delta == pytest.approx(prof.pool_startup_s - prof.warm_dispatch_s)
    # End to end: auto inside a warm session executes and matches the
    # chosen algorithm run directly.
    with Session(cfg) as s:
        s.warm_up()
        c = s.multiply(a, a, algorithm="auto")
        again = s.multiply(a, a, algorithm="auto")
    _assert_identical(c, again)
