"""Smoke coverage for the session perf harness (``@pytest.mark.perf``).

Tier-1-safe: runs ``benchmarks/bench_session.py --quick`` on small
inputs and validates the JSON schema — of the fresh quick run and of
the committed repo-root ``BENCH_session.json`` artifact — so a schema
drift, a session that stops amortizing, or an arena-hygiene regression
fails fast without timing anything at full scale.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_session", REPO_ROOT / "benchmarks" / "bench_session.py"
)
bench_session = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_session)

pytestmark = [pytest.mark.perf, pytest.mark.session]


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("session") / "BENCH_session.json"
    assert bench_session.main(["--quick", "--reps", "1", "--output", str(out)]) == 0
    return json.loads(out.read_text())


def test_quick_run_validates(quick_report):
    data = bench_session.validate_report(quick_report)
    assert data["meta"]["quick"] is True
    assert data["acceptance"]["identity_all"] is True
    assert data["acceptance"]["arena_leases_all_released"] is True
    ident = data["identity"][data["acceptance"]["workload"]]
    assert set(ident) == {
        "plus_times",
        "min_plus",
        "max_times",
        "or_and",
        "plus_pair",
    }


def test_quick_run_amortizes(quick_report):
    am = quick_report["amortization"]
    # One spawn for the whole warm loop, and the steady state beats the
    # per-call spawn path by at least the validator floor.
    assert am["engine_spawns"] == 1
    assert am["warm_speedup"] >= bench_session.MIN_WARM_SPEEDUP
    assert len(am["cold_per_call_s"]) == am["cold_calls"]
    assert len(am["warm_per_call_s"]) == am["warm_calls"]
    # Recycling actually happened: hits on the pool free lists.
    assert am["arena_pool"]["hits"] > 0


def test_quick_run_covers_both_schedules(quick_report):
    assert quick_report["pipeline"], "pipeline section must not be empty"
    for w, p in quick_report["pipeline"].items():
        assert p["pipelined_s"] > 0 and p["barrier_s"] > 0


def test_committed_artifact_is_valid():
    path = REPO_ROOT / "BENCH_session.json"
    assert path.exists(), "BENCH_session.json must be committed at the repo root"
    data = bench_session.validate_report(json.loads(path.read_text()))
    assert data["meta"]["quick"] is False, "the committed artifact is a full run"
    acc = data["acceptance"]
    # The PR's acceptance bar, pinned so a regression that slips into a
    # refreshed artifact is caught at review time.
    assert acc["warm_speedup"] >= 1.5
    assert acc["identity_all"] is True
    assert acc["arena_leases_all_released"] is True
    # Full run covers the paper-scale pipeline workloads.
    assert set(data["pipeline"]) == {"er_s16_ef16", "rmat_s14_ef8"}


def test_validate_report_rejects_bad_payloads(quick_report):
    with pytest.raises(ValueError, match="schema_version"):
        bench_session.validate_report({**quick_report, "schema_version": 99})
    with pytest.raises(ValueError, match="missing top-level"):
        bench_session.validate_report(
            {k: v for k, v in quick_report.items() if k != "pipeline"}
        )
    broken = json.loads(json.dumps(quick_report))
    broken["amortization"]["engine_spawns"] = 2
    with pytest.raises(ValueError, match="exactly once"):
        bench_session.validate_report(broken)
    leaky = json.loads(json.dumps(quick_report))
    leaky["amortization"]["arena_pool"]["released"] -= 1
    with pytest.raises(ValueError, match="hygiene"):
        bench_session.validate_report(leaky)
