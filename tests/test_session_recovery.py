"""Worker-death recovery of persistent sessions (``@pytest.mark.parallel``).

A session's process pool can die under it — OOM killer, segfaulting
worker, operator ``kill -9``.  The contract (DESIGN.md §15 failure
model): the poisoned :class:`~repro.parallel.executor.ProcessEngine` is
torn down and respawned transparently, the interrupted multiply is
retried once and succeeds bit-identically, ``stats.engine_restarts``
records the event, and nothing leaks into ``/dev/shm`` — including
when the death happens under a fused ``multiply_many`` wave.

Each scenario runs in a subprocess (a real driver script, so worker
pickling works under ``spawn`` too) and the parent asserts a silent
``resource_tracker`` at interpreter exit, mirroring
``tests/test_shm_hygiene.py``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.parallel import process_backend_available

pytestmark = [pytest.mark.parallel, pytest.mark.session]

needs_pool = pytest.mark.skipif(
    not process_backend_available(), reason="POSIX shared memory unavailable"
)

REPO_ROOT = Path(__file__).resolve().parent.parent
START_METHODS = sorted(set(mp.get_all_start_methods()) & {"fork", "spawn"})

DRIVER = '''
import glob
import os
import signal
import sys

import repro
from repro import PBConfig, Session


def shm_names():
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/wnsm_*"))


def _suicide():
    """Runs inside a worker: dies without cleanup, like the OOM killer."""
    os.kill(os.getpid(), signal.SIGKILL)


def kill_workers(session):
    procs = list(session._engine._pool._processes.values())
    assert procs, "engine has no live workers to kill"
    for p in procs:
        p.kill()
    for p in procs:
        p.join()


def main(start_method):
    before = shm_names()
    a = repro.erdos_renyi(1 << 8, edge_factor=4, seed=7, fmt="csr")
    serial = repro.multiply(a, a, config=PBConfig(nbins=8))
    cfg = PBConfig(executor="process", nthreads=2, nbins=8)
    with Session(cfg, start_method=start_method) as s:
        c = s.multiply(a, a)
        assert c.data.tobytes() == serial.data.tobytes()
        spawns0 = s.stats.engine_spawns

        # 1. Workers killed between multiplies (kill -9 from outside).
        kill_workers(s)
        c = s.multiply(a, a)
        assert c.data.tobytes() == serial.data.tobytes()
        assert s.stats.engine_restarts == 1, s.stats.engine_restarts
        assert s.stats.engine_spawns > spawns0

        # 2. A worker dies *while executing* (suicide task poisons the
        # pool mid-flight), then a fused multiply_many wave must recover.
        try:
            s._engine._pool.submit(_suicide).result()
        except Exception:
            pass  # BrokenProcessPool from the dying worker
        outs = s.multiply_many([(a, a), (a, a), (a, a)])
        for c in outs:
            assert c.data.tobytes() == serial.data.tobytes()
        assert s.stats.engine_restarts == 2, s.stats.engine_restarts
        assert s.stats.fused_waves == 1
        stats = s.runtime_stats()
        assert stats["engine"]["workers_alive"] >= 1
        assert not stats["engine"]["broken"]
    leftover = shm_names() - before
    if leftover:
        raise SystemExit(f"leaked shm segments: {sorted(leftover)}")
    print("RECOVERY-OK")


if __name__ == "__main__":
    main(sys.argv[1])
'''


def _run_driver(tmp_path: Path, start_method: str):
    script = tmp_path / "recovery_driver.py"
    script.write_text(DRIVER)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    return subprocess.run(
        [sys.executable, str(script), start_method],
        capture_output=True,
        text=True,
        env=env,
        timeout=560,
    )


@needs_pool
@pytest.mark.parametrize("start_method", START_METHODS)
def test_worker_death_recovery(tmp_path, start_method):
    proc = _run_driver(tmp_path, start_method)
    assert proc.returncode == 0, (
        f"driver failed under {start_method}:\n{proc.stdout}\n{proc.stderr}"
    )
    assert "RECOVERY-OK" in proc.stdout
    assert "resource_tracker" not in proc.stderr, proc.stderr
    assert "leaked" not in proc.stderr, proc.stderr
