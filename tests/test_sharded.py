"""Tests for the multi-process sharded tiled engine (``repro.core.sharded``).

The load-bearing contract is ISSUE 10's bit-identity claim: the sharded
multiply must equal the monolithic ``pb_spgemm`` bit-for-bit on every
semiring, for every shard count and panel grid, no matter in which
order the shards finish — because the k dimension is never split and
the parent merges panels in deterministic (row, column) order, not
arrival order.  Around that: shard planning, the spill-file lifecycle
under worker crashes (stage files suffixed per shard+pid, scrubbed on
death), the ``--shards auto`` heuristic, planner pricing, serve
routing, and the CLI conflict checks.
"""

import contextlib
import glob
import io
import os

import numpy as np
import pytest

from repro import PBConfig, multiply
from repro.core import pb_spgemm
from repro.core.sharded import (
    FAULT_ENV,
    MAX_AUTO_SHARDS,
    ShardPlan,
    plan_shards,
    resolve_shards,
    sharded_config,
    sharded_peak_bytes,
    sharded_spgemm,
    sharded_spgemm_detailed,
)
from repro.core.tiled import SpillStore, cleanup_stage_files
from repro.errors import ConfigError, ShapeError
from repro.generators import erdos_renyi
from repro.kernels.tile_merge import accumulate_partials, hstack_tiles
from repro.matrix import CSCMatrix, CSRMatrix
from repro.matrix.ops import col_slice, row_slice
from repro.parallel import process_backend_available
from repro.semiring import available_semirings, get_semiring

from tests.util import random_coo

pytestmark = pytest.mark.sharded

needs_pool = pytest.mark.skipif(
    not process_backend_available(), reason="POSIX shared memory unavailable"
)

SEMIRINGS = sorted(available_semirings())


def _bit_equal(c, ref):
    assert c.shape == ref.shape
    assert np.array_equal(c.indptr, ref.indptr)
    assert np.array_equal(c.indices, ref.indices)
    assert np.array_equal(c.data, ref.data)


@pytest.fixture(scope="module")
def operands():
    a = erdos_renyi(512, 6, seed=11, fmt="csc")
    b = erdos_renyi(512, 6, seed=12, fmt="csr")
    return a, b


# ---------------------------------------------------------------------------
# bit-identity
# ---------------------------------------------------------------------------


@needs_pool
@pytest.mark.parametrize("semiring", SEMIRINGS)
def test_bit_identical_all_semirings(operands, semiring):
    a, b = operands
    ref = pb_spgemm(a, b, semiring)
    res = sharded_spgemm_detailed(a, b, semiring, PBConfig(shards=2))
    assert res.fallback is None
    _bit_equal(res.c, ref)


@needs_pool
@pytest.mark.parametrize(
    "config",
    [
        PBConfig(shards=3),  # uneven row split
        PBConfig(shards=2, tile_cols=150),  # multi-panel, shard merge
        PBConfig(shards=2, tile_cols=150, memory_budget=150_000),  # parent merge
    ],
    ids=["three-shards", "panels", "parent-merge"],
)
def test_bit_identical_topologies(operands, config):
    a, b = operands
    ref = pb_spgemm(a, b, "plus_times")
    res = sharded_spgemm_detailed(a, b, "plus_times", config)
    assert res.fallback is None
    _bit_equal(res.c, ref)
    assert sorted(s.sid for s in res.shard_stats) == list(
        range(res.plan.shards)
    )


@needs_pool
def test_ragged_rectangular(operands):
    coo_a = random_coo(np.random.default_rng(5), 97, 53, 400)
    coo_b = random_coo(np.random.default_rng(6), 53, 71, 380)
    a, b = coo_a.to_csc(), coo_b.to_csr()
    ref = pb_spgemm(a, b, "min_plus")
    res = sharded_spgemm_detailed(a, b, "min_plus", PBConfig(shards=3))
    # tiny inputs may legitimately degrade to the tiled fallback; the
    # product must be bit-identical either way
    _bit_equal(res.c, ref)


def test_shape_mismatch_raises():
    a = erdos_renyi(16, 2, seed=1, fmt="csc")
    b = erdos_renyi(32, 2, seed=2, fmt="csr")
    with pytest.raises(ShapeError):
        sharded_spgemm(a, b, config=PBConfig(shards=2))


@needs_pool
def test_empty_product_falls_back():
    a = CSCMatrix.empty((40, 40))
    b = erdos_renyi(40, 2, seed=3, fmt="csr")
    res = sharded_spgemm_detailed(a, b, "plus_times", PBConfig(shards=2))
    assert res.fallback is not None
    assert res.c.nnz == 0 and res.c.shape == (40, 40)


def test_single_shard_falls_back_to_tiled(operands):
    a, b = operands
    res = sharded_spgemm_detailed(a, b, "plus_times", PBConfig(shards=1))
    assert res.fallback == "shards resolve to 1"
    assert res.tiled is not None
    _bit_equal(res.c, pb_spgemm(a, b, "plus_times"))


# ---------------------------------------------------------------------------
# out-of-order panel arrival (satellite: merge determinism)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("semiring", SEMIRINGS)
def test_hstack_merge_ignores_arrival_order(semiring):
    """Shards finish in arbitrary order; the merged product may not care.

    The parent's merge is position-keyed, not arrival-keyed: compute
    each row panel's tiles, then assemble panels under several arrival
    permutations and demand bit-equality with the monolithic product —
    including float ``plus_times``, whose ⊕ is not associative, because
    every output position still folds the same k-ordered sequence.
    """
    sr = get_semiring(semiring)
    a = erdos_renyi(120, 5, seed=21, fmt="csc")
    b = erdos_renyi(120, 5, seed=22, fmt="csr")
    ref = pb_spgemm(a, b, sr)
    a_csr = a.to_csr()
    b_csc = b.to_csr().to_csc()
    row_edges = [0, 37, 61, 120]
    col_edges = [0, 50, 83, 120]

    def assemble(arrival):
        panels = {}
        for i in arrival:  # completion order varies; results may not
            a_i = row_slice(a_csr, row_edges[i], row_edges[i + 1]).to_csc()
            tiles = []
            for j in range(len(col_edges) - 1):
                b_j = col_slice(b_csc, col_edges[j], col_edges[j + 1]).to_csr()
                tiles.append(pb_spgemm(a_i, b_j, sr))
            panels[i] = hstack_tiles(
                tiles, col_edges[:-1], row_edges[i + 1] - row_edges[i], 120, sr
            )
        # assembly is always ascending-sid, whatever the arrival order
        indptr = [np.zeros(1, dtype=np.int64)]
        indices, data, off = [], [], 0
        for i in range(len(row_edges) - 1):
            blk = panels[i]
            indptr.append(blk.indptr[1:] + off)
            indices.append(blk.indices)
            data.append(blk.data)
            off += blk.nnz
        return CSRMatrix(
            (120, 120),
            np.concatenate(indptr),
            np.concatenate(indices),
            np.concatenate(data),
            validate=False,
        )

    for arrival in ([0, 1, 2], [2, 0, 1], [1, 2, 0]):
        _bit_equal(assemble(arrival), ref)


@pytest.mark.parametrize("semiring", SEMIRINGS)
def test_accumulate_partials_out_of_order(semiring):
    """k-split partials: list order is the fold order, and it shows.

    For idempotent-⊕ semirings the stack order cannot matter; for the
    float ``plus_times`` ⊕ it can — the guarantee is *determinism in
    list order*, which is why a future 3D k-split must stack partials
    in k order, and why the 2D sharded engine (k never split) is exempt
    from the question entirely.
    """
    sr = get_semiring(semiring)
    coo_a = random_coo(np.random.default_rng(31), 40, 60, 500)
    coo_b = random_coo(np.random.default_rng(32), 60, 35, 500)
    a_csr, b_csc = coo_a.to_csr(), coo_b.to_csc()
    k0 = 29
    parts = []
    for lo, hi in ((0, k0), (k0, 60)):
        a_half = col_slice(a_csr.to_csc(), lo, hi)
        b_half = row_slice(b_csc.to_csr(), lo, hi)
        parts.append(pb_spgemm(a_half, b_half, sr))
    in_order = accumulate_partials(list(parts), sr)
    reversed_ = accumulate_partials(list(reversed(parts)), sr)
    again = accumulate_partials(list(parts), sr)
    # deterministic: same list -> same bits
    _bit_equal(again, in_order)
    assert np.array_equal(in_order.indices, reversed_.indices)
    if semiring == "plus_times":
        # same values up to reassociation of the k split...
        assert np.allclose(in_order.data, reversed_.data)
    else:
        # ...and bit-equal under idempotent/exact ⊕, either order
        _bit_equal(reversed_, in_order)


# ---------------------------------------------------------------------------
# shard planning
# ---------------------------------------------------------------------------


def test_resolve_shards_values():
    assert resolve_shards(None) == 1
    assert resolve_shards(4) == 4
    assert resolve_shards(4, m=3) == 3  # clamped to rows
    assert resolve_shards(1) == 1


def test_resolve_shards_auto(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 4)
    # plenty of memory: core count wins
    assert resolve_shards("auto", m=10_000, flop=10**7, memory_budget=None) == 4
    # small problems do not shard: spawn cost dominates
    assert resolve_shards("auto", m=10_000, flop=1000) == 1
    # memory pressure raises the count: working set 48 * 1e7 = 480 MB,
    # per-process budget 100 MB -> needs >= 5 shards
    assert (
        resolve_shards("auto", m=10_000, flop=10**7, memory_budget=100_000_000)
        == 5
    )
    # ...capped at MAX_AUTO_SHARDS
    assert (
        resolve_shards("auto", m=10_000, flop=10**9, memory_budget=10_000_000)
        == MAX_AUTO_SHARDS
    )


def test_plan_shards_balances_rows():
    m, n = 100, 80
    row_flops = np.ones(m, dtype=np.int64)
    plan = plan_shards(m, n, int(row_flops.sum()), row_flops, 4, PBConfig())
    assert plan.shards == 4
    assert plan.row_ranges[0][0] == 0 and plan.row_ranges[-1][1] == m
    for (a0, a1), (b0, b1) in zip(plan.row_ranges, plan.row_ranges[1:]):
        assert a1 == b0  # contiguous
    sizes = [hi - lo for lo, hi in plan.row_ranges]
    assert max(sizes) - min(sizes) <= 1  # uniform flop -> even rows
    assert plan.grid_cols == 1 and plan.merge == "shard"


def test_plan_shards_budget_drives_columns():
    m = n = 1000
    row_flops = np.full(m, 1000, dtype=np.int64)
    flop = int(row_flops.sum())
    cfg = PBConfig(shards=4, memory_budget=2_000_000)
    plan = plan_shards(m, n, flop, row_flops, 4, cfg)
    # per-shard flop 250k -> working 12 MB vs usable 1 MB -> 12 panels
    assert plan.grid_cols == 12
    assert plan.col_edges[0] == 0 and plan.col_edges[-1] == n


def test_sharded_config_downgrades_process():
    cfg = sharded_config(PBConfig(executor="process", nthreads=4), 2)
    assert cfg.shards == 2 and cfg.executor == "serial"


def test_config_validation():
    with pytest.raises(ConfigError):
        PBConfig(shards=0)
    with pytest.raises(ConfigError):
        PBConfig(shards="many")
    with pytest.raises(ConfigError):
        PBConfig(shards=2, executor="process", nthreads=2)
    assert PBConfig(shards="auto").shards == "auto"


def test_sharded_peak_bytes_shrinks_with_shards():
    one = sharded_peak_bytes(10**7, 1000, 1000, 1, 1)
    four = sharded_peak_bytes(10**7, 1000, 1000, 4, 1)
    assert four < one


# ---------------------------------------------------------------------------
# spill-file lifecycle (satellite: crash hygiene)
# ---------------------------------------------------------------------------


def test_spillstore_stage_suffix(tmp_path):
    coo = random_coo(np.random.default_rng(41), 20, 20, 60)
    store = SpillStore(str(tmp_path), 1, stage_suffix="-s1-123")
    store.put("tile-0", coo.to_csr())
    store.put("tile-1", coo.to_csr())  # evicts tile-0 to disk
    files = [os.path.basename(p) for p in glob.glob(str(tmp_path / "*.npz"))]
    assert files and all(f.endswith("-s1-123.npz") for f in files)
    # another shard's files are untouched by a targeted scrub
    (tmp_path / "tile-0-s2-456.npz").write_bytes(b"x")
    assert cleanup_stage_files(str(tmp_path), "-s1-123") == len(files)
    left = [os.path.basename(p) for p in glob.glob(str(tmp_path / "*.npz"))]
    assert left == ["tile-0-s2-456.npz"]
    assert cleanup_stage_files(str(tmp_path), "") == 1  # empty suffix: all
    assert cleanup_stage_files(str(tmp_path) + "-missing") == 0
    store.close()


@needs_pool
def test_shard_killed_at_start_recovers(operands):
    a, b = operands
    ref = pb_spgemm(a, b, "plus_times")
    os.environ[FAULT_ENV] = "start:1"
    try:
        res = sharded_spgemm_detailed(a, b, "plus_times", PBConfig(shards=3))
    finally:
        del os.environ[FAULT_ENV]
    assert res.recovered_shards == 1
    assert any(s.recovered for s in res.shard_stats)
    _bit_equal(res.c, ref)


@needs_pool
def test_shard_killed_mid_spill_no_orphans(tmp_path, operands):
    """ISSUE 10 satellite: SIGKILL a shard after it staged a spill file;
    the parent must scrub the dead shard's ``.npz`` files and still
    return the correct product (panel recomputed in-process)."""
    a, b = operands
    ref = pb_spgemm(a, b, "plus_times")
    cfg = PBConfig(
        shards=2,
        tile_cols=128,
        memory_budget=1_200_000,
        spill_dir=str(tmp_path),
    )
    # sanity: this topology really spills in shard-merge mode
    probe = sharded_spgemm_detailed(a, b, "plus_times", cfg)
    assert probe.plan.merge == "shard"
    assert any(s.spilled_tiles for s in probe.shard_stats)
    assert not glob.glob(str(tmp_path / "*.npz"))
    os.environ[FAULT_ENV] = "spill:0"
    try:
        res = sharded_spgemm_detailed(a, b, "plus_times", cfg)
    finally:
        del os.environ[FAULT_ENV]
    assert res.recovered_shards == 1
    assert not glob.glob(str(tmp_path / "*.npz")), "orphaned stage files"
    _bit_equal(res.c, ref)


# ---------------------------------------------------------------------------
# front-door wiring: multiply / session / planner / serve / CLI
# ---------------------------------------------------------------------------


@needs_pool
def test_multiply_shards_kwarg(operands):
    a, b = operands
    ref = pb_spgemm(a, b, "plus_times")
    _bit_equal(multiply(a, b, shards=2), ref)
    # config-borne shards upgrade pb to the sharded path too
    _bit_equal(multiply(a, b, config=PBConfig(shards=2)), ref)


def test_multiply_shards_rejects_other_algorithms(operands):
    a, b = operands
    with pytest.raises(ConfigError):
        multiply(a, b, algorithm="hash", shards=2)


@needs_pool
def test_session_books_sharded_multiplies(operands):
    from repro.session import Session

    a, b = operands
    ref = pb_spgemm(a, b, "plus_times")
    with Session(config=PBConfig(shards=2)) as s:
        _bit_equal(s.multiply(a, b, algorithm="sharded"), ref)
        _bit_equal(s.multiply(a, b, algorithm="sharded"), ref)
        assert s.stats.sharded_multiplies == 2
        pool = s.runtime_stats()["arena_pool"]
        assert pool["outstanding"] == 0  # broadcast/return segs returned
        assert pool["hits"] > 0  # the second multiply recycled segments


def test_planner_prices_sharded(operands):
    from repro.planner import plan

    a, b = operands
    p = plan(a, b, config=PBConfig(shards=4))
    cands = {c.algorithm: c for c in p.candidates}
    assert "sharded" in cands
    sharded = cands["sharded"]
    assert sharded.executor == "sharded"
    assert sharded.overrides.get("shards") == 4
    assert sharded.predicted_peak_bytes > 0


def test_planner_gates_sharded_off_process_executor(operands):
    from repro.planner import plan

    a, b = operands
    p = plan(a, b, config=PBConfig(executor="process", nthreads=2))
    assert all(c.algorithm != "sharded" for c in p.candidates)


def test_scheduler_solo_tuples():
    from repro.serve.scheduler import BatchScheduler, ServeRequest

    def mk(rid, tuples):
        return ServeRequest(
            id=rid, a_csc=None, b_csr=None, algorithm="pb",
            semiring="plus_times", config=None, tuples=tuples,
        )

    sched = BatchScheduler(
        None, max_batch=8, max_batch_tuples=10**9, solo_tuples=1000
    )
    for r in (mk(1, 10), mk(2, 5000), mk(3, 20), mk(4, 30)):
        assert sched.submit(r) is None
    w1 = sched._next_wave()  # head is small and fusable...
    assert [r.id for r in w1.requests] == [1, 3, 4]  # ...big one skipped
    w2 = sched._next_wave()
    assert [r.id for r in w2.requests] == [2]  # the giant rides alone
    assert sched.gauges()["solo_tuples"] == 1000


def test_cli_shards_conflicts(tmp_path, operands):
    from repro.cli import main
    from repro.matrix.io import write_matrix_market

    a, _ = operands
    path = str(tmp_path / "a.mtx")
    write_matrix_market(a.to_csr(), path)
    cases = [
        ["matrix", "multiply", path, "--shards", "2", "--executor", "process",
         "--nthreads", "2"],
        ["matrix", "multiply", path, "--shards", "2", "--tile-rows", "10"],
        ["matrix", "multiply", path, "--shards", "zero"],
        ["matrix", "multiply", path, "--shards", "0"],
        ["matrix", "multiply", path, "--shards", "2", "--algorithm", "heap"],
    ]
    for argv in cases:
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            assert main(argv) == 2, argv
        assert err.getvalue().strip(), argv


@needs_pool
def test_cli_shards_runs(tmp_path, operands, capsys):
    from repro.cli import main
    from repro.matrix.io import write_matrix_market

    a, _ = operands
    path = str(tmp_path / "a.mtx")
    write_matrix_market(a.to_csr(), path)
    assert main(["matrix", "multiply", path, "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "shards=2" in out
