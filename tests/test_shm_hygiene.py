"""Shared-memory hygiene of persistent sessions (``@pytest.mark.parallel``).

A session leases segments from its :class:`~repro.parallel.shm.ArenaPool`
across many multiplies; the contract is that *nothing* outlives
``Session.close()``: zero leftover ``/dev/shm`` segments and zero
``resource_tracker`` leak warnings at interpreter exit — including after
an abnormal teardown where a worker raises mid-bin with arenas live.

Each scenario runs in a subprocess (a real driver script, so worker
pickling works under ``spawn`` too): the driver diffs ``/dev/shm``
around the session and the parent asserts its stderr carries no
tracker warnings, which only surface at process exit.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import multiprocessing as mp
import pytest

from repro.parallel import process_backend_available

pytestmark = pytest.mark.parallel

needs_pool = pytest.mark.skipif(
    not process_backend_available(), reason="POSIX shared memory unavailable"
)

REPO_ROOT = Path(__file__).resolve().parent.parent
START_METHODS = sorted(
    set(mp.get_all_start_methods()) & {"fork", "spawn"}
)

DRIVER = '''
import glob
import sys

import numpy as np

import repro
from repro import PBConfig, Session
from repro.semiring import Semiring


def shm_names():
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/wnsm_*"))


class BombUfunc:
    """Quacks like the add ufunc until compress calls reduceat mid-bin."""

    def __call__(self, a, b):
        return np.add(a, b)

    def reduceat(self, vals, starts):
        raise RuntimeError("bin bomb")


def main(start_method, n_multiplies):
    before = shm_names()
    a = repro.erdos_renyi(1 << 9, edge_factor=4, seed=5, fmt="csr")
    serial = repro.multiply(a, a, config=PBConfig(nbins=16))
    cfg = PBConfig(executor="process", nthreads=2, nbins=16)
    with Session(cfg, start_method=start_method) as s:
        for _ in range(n_multiplies):
            c = s.multiply(a, a)
            assert c.data.tobytes() == serial.data.tobytes()
        # Abnormal teardown: an unregistered (pickled-by-value) semiring
        # whose segmented reduction detonates inside a worker, mid-bin,
        # while the multiply's arenas are still leased.
        bomb = Semiring(
            name="bomb-unregistered",
            add_ufunc=BombUfunc(),
            multiply=np.multiply,
            add_identity=0.0,
        )
        try:
            s.multiply(a, a, semiring=bomb)
        except Exception as exc:
            assert "bin bomb" in repr(exc), f"unexpected failure: {exc!r}"
        else:
            raise SystemExit("worker bomb did not propagate")
        # The session survives the failure: pool still warm, arenas
        # reclaimed, next multiply still bit-identical.
        assert s.is_warm()
        c = s.multiply(a, a)
        assert c.data.tobytes() == serial.data.tobytes()
    leftover = shm_names() - before
    if leftover:
        raise SystemExit(f"leaked shm segments: {sorted(leftover)}")
    print("HYGIENE-OK")


if __name__ == "__main__":
    main(sys.argv[1], int(sys.argv[2]))
'''


def _run_driver(tmp_path: Path, start_method: str, n: int):
    script = tmp_path / "hygiene_driver.py"
    script.write_text(DRIVER)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    return subprocess.run(
        [sys.executable, str(script), start_method, str(n)],
        capture_output=True,
        text=True,
        env=env,
        timeout=560,
    )


@needs_pool
@pytest.mark.parametrize("start_method", START_METHODS)
def test_no_shm_leaks_and_no_tracker_warnings(tmp_path, start_method):
    n = 8 if start_method == "fork" else 4  # spawn pays slow worker boot
    proc = _run_driver(tmp_path, start_method, n)
    assert proc.returncode == 0, (
        f"driver failed under {start_method}:\n{proc.stdout}\n{proc.stderr}"
    )
    assert "HYGIENE-OK" in proc.stdout
    # resource_tracker complains on stderr at interpreter exit; any
    # mention means a segment was left registered or double-unlinked.
    assert "resource_tracker" not in proc.stderr, proc.stderr
    assert "leaked" not in proc.stderr, proc.stderr
