"""Tests for scheduling, the simulation engine, and trace generators."""

import numpy as np
import pytest

from repro.core.config import PBConfig
from repro.costmodel import workload_stats
from repro.errors import SimulationError
from repro.generators import erdos_renyi, rmat
from repro.machine import MemoryHierarchy, laptop_generic, skylake_sp
from repro.simulate import (
    lpt_makespan,
    partition_static_block,
    simulate_spgemm,
    static_block_makespan,
    trace_bin_writes,
    trace_bin_writes_local,
    trace_column_a_reads,
    trace_stream_read,
)
from repro.simulate.threads import imbalance_factor


class TestSchedules:
    def test_static_block_bounds(self):
        bounds = partition_static_block(10, 3)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert len(bounds) == 4

    def test_static_block_makespan_uniform(self):
        work = np.ones(100)
        assert static_block_makespan(work, 4) == 25

    def test_static_block_makespan_hub_front(self):
        work = np.ones(100)
        work[0] = 1000
        assert static_block_makespan(work, 4) == 1000 + 24

    def test_lpt_uniform(self):
        assert lpt_makespan(np.ones(100), 4) == 25

    def test_lpt_hub_bound(self):
        work = np.ones(100)
        work[50] = 1000
        # LPT puts the hub alone; others share the rest.
        assert lpt_makespan(work, 4) == 1000

    def test_lpt_single_thread(self):
        assert lpt_makespan(np.array([3.0, 4.0]), 1) == 7.0

    def test_lpt_fewer_items_than_threads(self):
        assert lpt_makespan(np.array([3.0, 9.0]), 8) == 9.0

    def test_lpt_optimal_small(self):
        # 4,3,3 on 2 threads: LPT gives {4,3} vs {3} -> wait, greedy: 4|3 then 3-> {4,3}? no:
        # sorted desc 4,3,3: t1=4, t2=3, then 3 -> t2=6. makespan 6 (optimal is 5+... 4+3=7/3+3=6 -> 6 optimal? {4,3},{3}=7 vs {4},{3,3}=6 -> 6 optimal).
        assert lpt_makespan(np.array([4.0, 3.0, 3.0]), 2) == 6.0

    def test_empty_and_errors(self):
        assert lpt_makespan(np.array([]), 4) == 0.0
        assert static_block_makespan(np.array([]), 4) == 0.0
        with pytest.raises(SimulationError):
            lpt_makespan(np.ones(3), 0)
        with pytest.raises(SimulationError):
            static_block_makespan(np.ones(3), 0)

    def test_imbalance_factor(self):
        assert imbalance_factor(None, 8) == 1.0
        assert imbalance_factor(np.ones(64), 1) == 1.0
        assert imbalance_factor(np.ones(64), 8) == 1.0
        work = np.ones(64)
        work[0] = 64
        assert imbalance_factor(work, 8, "lpt") == pytest.approx(64 / (127 / 8))
        with pytest.raises(SimulationError):
            imbalance_factor(np.ones(4), 2, "magic")


@pytest.fixture(scope="module")
def er_stats():
    a = erdos_renyi(1 << 12, 8, seed=21)
    return workload_stats(a.to_csc(), a)


@pytest.fixture(scope="module")
def rmat_stats():
    a = rmat(12, 8, seed=21)
    return workload_stats(a.to_csc(), a)


class TestEngine:
    def test_report_structure(self, er_stats):
        rep = simulate_spgemm(stats=er_stats, algorithm="pb", machine=skylake_sp())
        assert rep.nthreads == 24
        assert [p.name for p in rep.phases] == ["symbolic", "expand", "sort", "compress"]
        assert rep.total_seconds == pytest.approx(sum(p.seconds for p in rep.phases))
        assert rep.mflops == pytest.approx(er_stats.flop / rep.total_seconds / 1e6)
        assert rep.phase("sort").seconds > 0
        with pytest.raises(KeyError):
            rep.phase("nope")

    def test_more_threads_never_slower(self, er_stats):
        m = skylake_sp()
        times = [
            simulate_spgemm(stats=er_stats, algorithm="pb", machine=m, nthreads=t).total_seconds
            for t in (1, 2, 4, 8, 16, 24)
        ]
        assert all(t2 <= t1 * 1.0001 for t1, t2 in zip(times, times[1:]))

    @pytest.mark.parametrize("alg", ["pb", "heap", "hash", "hashvec", "spa", "esc_column"])
    def test_all_algorithms_simulate(self, er_stats, alg):
        rep = simulate_spgemm(stats=er_stats, algorithm=alg, machine=skylake_sp())
        assert rep.total_seconds > 0
        assert rep.mflops > 0

    def test_er_pb_saturates_bandwidth(self, er_stats):
        rep = simulate_spgemm(stats=er_stats, algorithm="pb", machine=skylake_sp())
        # Paper Fig. 7b: 40-55 GB/s sustained on a socket.
        assert 35.0 <= rep.sustained_gbs <= 57.1

    def test_rmat_lower_bandwidth_than_er(self, er_stats, rmat_stats):
        m = skylake_sp()
        er = simulate_spgemm(stats=er_stats, algorithm="pb", machine=m)
        rm = simulate_spgemm(stats=rmat_stats, algorithm="pb", machine=m)
        assert rm.sustained_gbs < er.sustained_gbs  # Fig. 9b vs 7b

    def test_pb_wins_er_single_socket(self, er_stats):
        m = skylake_sp()
        pb = simulate_spgemm(stats=er_stats, algorithm="pb", machine=m)
        for alg in ("heap", "hash", "hashvec"):
            other = simulate_spgemm(stats=er_stats, algorithm=alg, machine=m)
            assert pb.mflops > other.mflops  # Fig. 7a

    def test_dual_socket_rmat_favors_heap(self, rmat_stats):
        # Fig. 14: PB loses its edge on NUMA for skewed inputs.
        m = skylake_sp()
        pb1 = simulate_spgemm(stats=rmat_stats, algorithm="pb", machine=m, sockets=1)
        pb2 = simulate_spgemm(
            stats=rmat_stats, algorithm="pb", machine=m, nthreads=48, sockets=2
        )
        heap2 = simulate_spgemm(
            stats=rmat_stats, algorithm="heap", machine=m, nthreads=48, sockets=2
        )
        # PB gains little (or even regresses) from the second socket;
        # heap scales nearly 2x.
        heap1 = simulate_spgemm(stats=rmat_stats, algorithm="heap", machine=m, sockets=1)
        heap_gain = heap1.total_seconds / heap2.total_seconds
        pb_gain = pb1.total_seconds / pb2.total_seconds
        assert heap_gain > 1.5
        assert heap_gain > pb_gain

    def test_higher_bandwidth_machine_faster_pb(self, er_stats):
        from repro.machine import power9

        sky = simulate_spgemm(stats=er_stats, algorithm="pb", machine=skylake_sp())
        p9 = simulate_spgemm(
            stats=er_stats, algorithm="pb", machine=power9(), nthreads=20
        )
        assert p9.mflops > sky.mflops  # Fig. 8 vs Fig. 7

    def test_matrices_accepted_directly(self):
        a = erdos_renyi(256, 4, seed=0)
        rep = simulate_spgemm(a.to_csc(), a, algorithm="pb", machine=laptop_generic())
        assert rep.total_seconds > 0

    def test_argument_validation(self, er_stats):
        m = skylake_sp()
        with pytest.raises(SimulationError):
            simulate_spgemm(machine=m)  # neither matrices nor stats
        with pytest.raises(SimulationError):
            simulate_spgemm(stats=er_stats, machine=m, nthreads=25, sockets=1)
        with pytest.raises(SimulationError):
            simulate_spgemm(stats=er_stats, machine=m, sockets=3)
        with pytest.raises(SimulationError):
            simulate_spgemm(stats=er_stats, machine=m, nthreads=0)

    def test_str_renders(self, er_stats):
        rep = simulate_spgemm(stats=er_stats, algorithm="pb", machine=skylake_sp())
        text = str(rep)
        assert "MFLOPS" in text and "expand" in text


class TestTraces:
    def test_stream_read_sequential(self):
        t = trace_stream_read(100)
        assert np.all(np.diff(t) == 12)

    def test_stream_misses_match_line_count(self):
        m = laptop_generic()
        h = MemoryHierarchy(m)
        nnz = 2000
        h.access(trace_stream_read(nnz))
        expected_lines = -(-nnz * 12 // 64)
        assert abs(h.stats.dram_lines - expected_lines) <= 1

    def test_column_reads_touch_more_lines_than_streaming(self):
        # The Table II contrast: same data volume, worse locality.  Use
        # an A larger than the simulated cache so re-reads actually miss.
        a = erdos_renyi(4096, 4, seed=3, fmt="csc")
        b = erdos_renyi(4096, 4, seed=4)
        m = laptop_generic()
        h1 = MemoryHierarchy(m, levels=("L1",))
        h1.access(trace_column_a_reads(a, b))
        h2 = MemoryHierarchy(m, levels=("L1",))
        h2.access(trace_stream_read(a.nnz))
        assert h1.stats.dram_lines > 2 * h2.stats.dram_lines

    def test_column_reads_volume(self):
        a = erdos_renyi(128, 4, seed=3, fmt="csc")
        b = erdos_renyi(128, 4, seed=4)
        t = trace_column_a_reads(a, b)
        from repro.matrix.stats import total_flops

        assert len(t) == total_flops(a, b)

    def test_local_bins_use_fewer_lines(self):
        # Fig. 5's point, verified in the cache simulator: flush bursts
        # write whole lines; direct appends thrash across bins.
        from repro.core.binning import plan_bins

        rng = np.random.default_rng(8)
        rows = rng.integers(0, 4096, size=20000)
        layout = plan_bins(4096, 4096, 256, 16)
        m = laptop_generic()
        h_direct = MemoryHierarchy(m, levels=("L1",))
        h_direct.access(trace_bin_writes(layout, rows), size_bytes=16)
        h_local = MemoryHierarchy(m, levels=("L1",))
        h_local.access(trace_bin_writes_local(layout, rows, 32), size_bytes=16)
        assert h_local.stats.dram_lines < h_direct.stats.dram_lines

    def test_bin_writes_cover_all_tuples(self):
        from repro.core.binning import plan_bins

        rows = np.array([0, 5, 9, 0, 3])
        layout = plan_bins(10, 10, 2, 5)
        t = trace_bin_writes(layout, rows)
        assert len(t) == 5
        assert len(np.unique(t)) == 5  # distinct slots

    def test_local_trace_same_addresses(self):
        from repro.core.binning import plan_bins

        rng = np.random.default_rng(8)
        rows = rng.integers(0, 64, size=500)
        layout = plan_bins(64, 64, 8, 8)
        a1 = np.sort(trace_bin_writes(layout, rows))
        a2 = np.sort(trace_bin_writes_local(layout, rows, 16))
        np.testing.assert_array_equal(a1, a2)


class TestPartitionedSimulation:
    def test_partitioned_beats_naive_dual_on_skewed(self, rmat_stats):
        from repro.simulate import simulate_partitioned_pb

        m = skylake_sp()
        naive = simulate_spgemm(
            stats=rmat_stats, algorithm="pb", machine=m, nthreads=48, sockets=2
        )
        part = simulate_partitioned_pb(rmat_stats, m)
        assert part.mflops > naive.mflops  # all-local bins win on skew
        assert part.algorithm.startswith("pb_partitioned")

    def test_extra_b_read_costs_on_sparse_flop(self):
        # When flop is tiny relative to nnz(B), re-reading B erodes the
        # benefit: the partitioned win over naive dual shrinks.
        import repro
        from repro.costmodel import workload_stats
        from repro.simulate import simulate_partitioned_pb

        m = skylake_sp()
        thin = repro.erdos_renyi(1 << 12, 2, seed=1)
        st = workload_stats(thin.to_csc(), thin)
        part = simulate_partitioned_pb(st, m)
        naive = simulate_spgemm(
            stats=st, algorithm="pb", machine=m, nthreads=48, sockets=2
        )
        dense = repro.erdos_renyi(1 << 12, 16, seed=1)
        st2 = workload_stats(dense.to_csc(), dense)
        part2 = simulate_partitioned_pb(st2, m)
        naive2 = simulate_spgemm(
            stats=st2, algorithm="pb", machine=m, nthreads=48, sockets=2
        )
        assert part.mflops / naive.mflops < part2.mflops / naive2.mflops * 1.5

    def test_single_partition_is_single_socket(self, er_stats):
        from repro.simulate import simulate_partitioned_pb

        m = skylake_sp()
        part = simulate_partitioned_pb(er_stats, m, npartitions=1)
        base = simulate_spgemm(stats=er_stats, algorithm="pb", machine=m, sockets=1)
        # Same workload, same placement: comparable (B counted once).
        assert part.total_seconds == pytest.approx(base.total_seconds, rel=0.15)

    def test_invalid_partitions(self, er_stats):
        from repro.errors import SimulationError
        from repro.simulate import simulate_partitioned_pb

        with pytest.raises(SimulationError):
            simulate_partitioned_pb(er_stats, skylake_sp(), npartitions=0)
