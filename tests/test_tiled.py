"""Tests for the tiled out-of-core engine (``repro.core.tiled``).

The load-bearing contract is the ISSUE 9 ablation: the tiled path must
be **bit-identical** to the monolithic ``pb_spgemm`` for every built-in
semiring on every grid — 1x1, ragged, budget-derived, degenerate — because
the grid is strictly 2D (the k dimension is never split, so every
output position folds the exact same value sequence in the same
order).  Around that: the spill store's .npz round trip, session/engine
reuse, planner budget gating, and the tile-merge kernels.
"""

import os

import numpy as np
import pytest

import repro
from repro import PBConfig
from repro.core import partitioned_pb_spgemm, pb_spgemm
from repro.core.tiled import (
    MAX_GRID_DIM,
    SpillStore,
    grid_for_budget,
    monolithic_peak_bytes,
    plan_tile_grid,
    tiled_peak_bytes,
    tiled_spgemm,
    tiled_spgemm_detailed,
)
from repro.errors import ShapeError
from repro.generators import erdos_renyi
from repro.kernels import available_algorithms, spgemm
from repro.kernels.tile_merge import accumulate_partials, hstack_tiles
from repro.matrix import CSCMatrix, CSRMatrix
from repro.matrix.ops import allclose, col_slice, row_slice
from repro.parallel import process_backend_available
from repro.semiring import available_semirings, get_semiring

from tests.util import random_coo

pytestmark = pytest.mark.tiled

needs_pool = pytest.mark.skipif(
    not process_backend_available(), reason="POSIX shared memory unavailable"
)

SEMIRINGS = sorted(available_semirings())

#: Grid configurations the identity ablation sweeps: monolithic
#: degenerate, ragged odd sizes, row-only and column-only splits, tiles
#: larger than the matrix, and a budget-derived grid with spilling.
GRID_CONFIGS = (
    PBConfig(),
    PBConfig(tile_rows=17, tile_cols=23),
    PBConfig(tile_rows=40),
    PBConfig(tile_cols=16),
    PBConfig(tile_rows=10_000, tile_cols=10_000),
    PBConfig(memory_budget=8192),
)


@pytest.fixture(scope="module")
def pair():
    rng = np.random.default_rng(7)
    a = random_coo(rng, 110, 80, 850, duplicates=True).to_csc()
    b = random_coo(rng, 80, 130, 850, duplicates=True).to_csr()
    return a, b


def _identical(x, y) -> bool:
    return (
        x.shape == y.shape
        and np.array_equal(x.indptr, y.indptr)
        and np.array_equal(x.indices, y.indices)
        and x.data.tobytes() == y.data.tobytes()
    )


class TestGridPlanning:
    def test_pinned_tiles(self):
        g = plan_tile_grid(100, 60, 1000, PBConfig(tile_rows=30, tile_cols=25))
        assert g.row_edges == (0, 30, 60, 90, 100)
        assert g.col_edges == (0, 25, 50, 60)
        assert (g.grid_rows, g.grid_cols, g.ntiles) == (4, 3, 12)

    def test_default_is_monolithic(self):
        g = plan_tile_grid(100, 60, 1000, PBConfig())
        assert (g.grid_rows, g.grid_cols) == (1, 1)

    def test_tile_larger_than_matrix_degrades_to_one_panel(self):
        g = plan_tile_grid(10, 8, 100, PBConfig(tile_rows=500, tile_cols=900))
        assert (g.grid_rows, g.grid_cols) == (1, 1)

    def test_budget_drives_unpinned_dimensions(self):
        cfg = PBConfig(memory_budget=1 << 16)
        g = plan_tile_grid(1 << 10, 1 << 10, 1 << 20, cfg)
        assert g.ntiles > 1
        pinned = PBConfig(memory_budget=1 << 16, tile_rows=1 << 10)
        g2 = plan_tile_grid(1 << 10, 1 << 10, 1 << 20, pinned)
        assert g2.grid_rows == 1  # the pin wins over the budget
        assert g2.grid_cols > 1

    def test_pathological_budget_clamped(self):
        gr, gc = grid_for_budget(1 << 20, 1 << 20, 1 << 30, 1)
        assert gr <= MAX_GRID_DIM and gc <= MAX_GRID_DIM

    def test_budget_never_exceeds_extents(self):
        gr, gc = grid_for_budget(3, 2, 1 << 30, 1)
        assert gr <= 3 and gc <= 2

    def test_peak_models_ordering(self):
        # More tiles -> strictly smaller modeled working set.
        mono = monolithic_peak_bytes(1 << 20, 1000, 1000, 5000)
        tiled = tiled_peak_bytes(1 << 20, 1000, 1000, 5000, 4, 4)
        assert tiled < mono


class TestSpillStore:
    def _block(self, rng, nnz=40):
        return random_coo(rng, 20, 20, nnz).to_csr()

    def test_in_memory_round_trip(self, rng):
        m = self._block(rng)
        with SpillStore() as store:
            store.put("x", m)
            assert store.staged_bytes > 0
            assert store.staging_dir is None  # nothing spilled
            got = store.pop("x")
            assert _identical(m, got)
            assert store.pop("x") is None

    def test_eviction_to_disk_and_restore(self, rng, tmp_path):
        blocks = {f"k{i}": self._block(rng) for i in range(6)}
        one = SpillStore._size(next(iter(blocks.values())))
        with SpillStore(str(tmp_path), mem_budget=2 * one) as store:
            for key, m in blocks.items():
                store.put(key, m)
            assert store.spilled_entries >= 4
            assert store.staged_bytes <= 2 * one
            on_disk = list(tmp_path.glob("*.npz"))
            assert len(on_disk) == store.spilled_entries
            for key, m in blocks.items():
                assert _identical(m, store.pop(key))
        # popped spill files are unlinked; requested dir is kept
        assert not list(tmp_path.glob("*.npz"))
        assert tmp_path.exists()

    def test_replace_semantics(self, rng):
        with SpillStore() as store:
            store.put("k", self._block(rng, nnz=10))
            newer = self._block(rng, nnz=30)
            store.put("k", newer)
            assert _identical(newer, store.pop("k"))
            assert store.pop("k") is None

    def test_close_removes_own_tempdir(self, rng):
        store = SpillStore(mem_budget=0)
        store.put("k", self._block(rng))
        staged = store.staging_dir
        assert staged is not None and os.path.isdir(staged)
        store.close()
        assert not os.path.exists(staged)


class TestBitIdentity:
    """The mandatory ablation: tiled == monolithic, bit for bit."""

    @pytest.mark.parametrize("semiring", SEMIRINGS)
    def test_all_grids_all_semirings(self, semiring, pair):
        a, b = pair
        ref = pb_spgemm(a, b, semiring)
        for cfg in GRID_CONFIGS:
            got = tiled_spgemm(a, b, semiring, cfg)
            assert _identical(ref, got), (semiring, cfg.tile_rows, cfg.tile_cols)

    def test_matches_scipy_oracle(self, pair):
        from repro.kernels import scipy_spgemm_oracle

        a, b = pair
        c = tiled_spgemm(a, b, config=PBConfig(tile_rows=32, tile_cols=32))
        assert allclose(c, scipy_spgemm_oracle(a, b))

    def test_dispatch_algorithm(self, pair):
        a, b = pair
        assert "tiled" in available_algorithms()
        c = spgemm(a, b, algorithm="tiled")
        assert allclose(c, pb_spgemm(a, b))

    def test_multiply_front_door(self, pair):
        a, b = pair
        cfg = PBConfig(tile_rows=50, tile_cols=50)
        c = repro.multiply(a, b, algorithm="tiled", config=cfg)
        assert _identical(c, pb_spgemm(a, b))


class TestDegenerate:
    @pytest.mark.parametrize("shape", [(0, 5, 4), (5, 0, 4), (5, 4, 0)])
    def test_empty_extents(self, shape):
        m, k, n = shape
        cfg = PBConfig(tile_rows=2, tile_cols=2)
        c = tiled_spgemm(CSCMatrix.empty((m, k)), CSRMatrix.empty((k, n)), config=cfg)
        assert c.shape == (m, n) and c.nnz == 0

    def test_empty_tiles_skipped(self):
        # Block-diagonal A x B: off-diagonal tiles generate zero flop
        # and must be skipped, not multiplied.
        eye = CSCMatrix.identity(8)
        b = CSRMatrix.identity(8)
        cfg = PBConfig(tile_rows=4, tile_cols=4)
        res = tiled_spgemm_detailed(eye, b, config=cfg)
        assert res.tiles_empty > 0
        assert res.tiles_computed < res.grid.ntiles
        assert _identical(res.c, CSRMatrix.identity(8))

    def test_1xn_and_nx1_grids(self, pair):
        a, b = pair
        ref = pb_spgemm(a, b)
        rows_only = tiled_spgemm_detailed(a, b, config=PBConfig(tile_rows=13))
        assert rows_only.grid.grid_cols == 1 and rows_only.grid.grid_rows > 1
        assert _identical(ref, rows_only.c)
        cols_only = tiled_spgemm_detailed(a, b, config=PBConfig(tile_cols=13))
        assert cols_only.grid.grid_rows == 1 and cols_only.grid.grid_cols > 1
        assert _identical(ref, cols_only.c)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            tiled_spgemm(CSCMatrix.empty((3, 4)), CSRMatrix.empty((5, 3)))

    def test_tile_stats_cover_grid(self, pair):
        a, b = pair
        res = tiled_spgemm_detailed(
            a, b, config=PBConfig(tile_rows=30, tile_cols=40),
            collect_tile_stats=True,
        )
        assert len(res.tile_stats) == res.tiles_computed
        assert sum(s.nnz for s in res.tile_stats) == res.c.nnz
        assert max(s.flop for s in res.tile_stats) == res.peak_tile_flop
        assert sum(s.flop for s in res.tile_stats) == res.total_flop


class TestSpillRoundTrip:
    def test_tiny_budget_spills_and_stays_identical(self, pair, tmp_path):
        a, b = pair
        cfg = PBConfig(memory_budget=2048, spill_dir=str(tmp_path))
        res = tiled_spgemm_detailed(a, b, config=cfg)
        assert res.spilled_tiles > 0
        assert res.spilled_bytes > 0
        assert res.peak_staged_bytes <= max(2048 // 8, 1)
        assert _identical(res.c, pb_spgemm(a, b))
        # staging files are consumed by the merge; the caller's dir stays
        assert not list(tmp_path.glob("*.npz"))
        assert tmp_path.exists()

    def test_no_budget_never_spills(self, pair):
        a, b = pair
        res = tiled_spgemm_detailed(a, b, config=PBConfig(tile_rows=20))
        assert res.spilled_tiles == 0 and res.spilled_bytes == 0


@needs_pool
class TestEngineReuse:
    def test_session_engine_shared_across_tiles(self, pair):
        a, b = pair
        cfg = PBConfig(
            executor="process", nthreads=2, tile_rows=40, tile_cols=50
        )
        with repro.Session(cfg, warm=True) as s:
            r1 = tiled_spgemm_detailed(a, b, config=cfg, session=s)
            r2 = tiled_spgemm_detailed(a, b, config=cfg, session=s)
            assert r1.executor_used == "process"
            assert s._engine.spawn_count == 1  # one pool for both grids
        assert _identical(r1.c, r2.c)
        assert _identical(r1.c, pb_spgemm(a, b))

    def test_partitioned_reuses_session_engine(self, pair):
        a, b = pair
        a_csr = a.to_csr()
        cfg = PBConfig(executor="process", nthreads=2)
        with repro.Session(cfg, warm=True) as s:
            c = partitioned_pb_spgemm(a_csr, b, config=cfg, session=s)
            assert s._engine.spawn_count == 1
        assert _identical(c, pb_spgemm(a, b))

    def test_private_engine_closed(self, pair):
        a, b = pair
        cfg = PBConfig(
            executor="process", nthreads=2, tile_rows=40, tile_cols=50
        )
        res = tiled_spgemm_detailed(a, b, config=cfg)
        assert res.executor_used == "process"
        assert _identical(res.c, pb_spgemm(a, b))


class TestPlannerBudgetGate:
    @pytest.fixture(scope="class")
    def planner_pair(self):
        b = erdos_renyi(1 << 12, 16, seed=3, fmt="csr")
        return b.to_csc(), b

    def test_budget_flips_winner_to_tiled(self, planner_pair):
        from repro.planner import PlanCache, plan

        a, b = planner_pair
        p0 = plan(a, b, cache=PlanCache())
        pb_cand = next(c for c in p0.candidates if c.algorithm == "pb")
        assert pb_cand.predicted_peak_bytes > 0
        budget = int(pb_cand.predicted_peak_bytes * 0.3)

        p1 = plan(a, b, config=PBConfig(memory_budget=budget), cache=PlanCache())
        assert p1.algorithm == "tiled"
        winner = p1.candidates[0]
        assert winner.predicted_peak_bytes <= budget
        assert p1.overrides.get("tile_rows") is not None
        assert p1.overrides.get("tile_cols") is not None
        # the overrides resolve into the executable config
        assert p1.config is not None and p1.config.tile_rows is not None
        # monolithic pb was rejected for the budget, and says so
        pb_loser = next(c for c in p1.candidates if c.algorithm == "pb")
        assert pb_loser.reason and "budget" in pb_loser.reason

    def test_unbudgeted_tiled_collapses_to_overhead_loser(self, planner_pair):
        from repro.planner import PlanCache, plan

        a, b = planner_pair
        p = plan(a, b, cache=PlanCache())
        assert p.algorithm != "tiled"  # pure cost without memory pressure
        assert any(c.algorithm == "tiled" for c in p.candidates)

    def test_budget_keys_cache_separately(self, planner_pair):
        from repro.planner import PlanCache, plan

        a, b = planner_pair
        cache = PlanCache()
        p0 = plan(a, b, cache=cache)
        p1 = plan(a, b, config=PBConfig(memory_budget=1 << 22), cache=cache)
        assert p0.cache_key != p1.cache_key
        # replanning unbudgeted must hit the unbudgeted entry
        again = plan(a, b, cache=cache)
        assert again.source in ("cache", "feedback")
        assert again.algorithm == p0.algorithm

    def test_auto_multiply_with_budget_runs(self, planner_pair):
        a, b = planner_pair
        cfg = PBConfig(memory_budget=1 << 23)
        c = repro.multiply(a, b, algorithm="auto", config=cfg)
        assert allclose(c, pb_spgemm(a, b))


class TestMergeKernels:
    def test_hstack_matches_column_slices(self, rng):
        m = random_coo(rng, 30, 50, 400, duplicates=True).to_csr()
        csc = m.to_csc()
        starts = [0, 17, 30]
        tiles = [
            col_slice(csc, 0, 17).to_csr(),
            col_slice(csc, 17, 30).to_csr(),
            col_slice(csc, 30, 50).to_csr(),
        ]
        out = hstack_tiles(tiles, starts, 30, 50)
        assert _identical(m, out)

    def test_hstack_none_tiles_are_empty(self, rng):
        m = random_coo(rng, 10, 8, 40).to_csr()
        out = hstack_tiles([None, m], [0, 5], 10, 13)
        np.testing.assert_allclose(out.to_dense()[:, 5:], m.to_dense())
        assert out.to_dense()[:, :5].sum() == 0.0

    def test_hstack_height_mismatch_raises(self, rng):
        m = random_coo(rng, 10, 8, 40).to_csr()
        with pytest.raises(ShapeError):
            hstack_tiles([m], [0], 12, 8)

    @pytest.mark.parametrize("semiring", ["min_plus", "max_times", "or_and"])
    def test_accumulate_k_split_exact(self, semiring, rng):
        # A k-split is the one decomposition the 2D driver never makes;
        # accumulate_partials must still fold it exactly for semirings
        # whose ⊕ is order-insensitive.
        a = random_coo(rng, 25, 40, 300, duplicates=True).to_csc()
        b = random_coo(rng, 40, 30, 300, duplicates=True).to_csr()
        sr = get_semiring(semiring)
        ref = pb_spgemm(a, b, sr)
        a_csr = a.to_csr()
        b_csc = b.to_csc()
        parts = [
            pb_spgemm(_kslice_a(a_csr, 0, 18), _kslice_b(b_csc, 0, 18), sr),
            pb_spgemm(_kslice_a(a_csr, 18, 40), _kslice_b(b_csc, 18, 40), sr),
        ]
        got = accumulate_partials(parts, sr)
        assert _identical(ref, got)

    def test_accumulate_plus_times_close(self, rng):
        a = random_coo(rng, 25, 40, 300, duplicates=True).to_csc()
        b = random_coo(rng, 40, 30, 300, duplicates=True).to_csr()
        ref = pb_spgemm(a, b)
        a_csr = a.to_csr()
        b_csc = b.to_csc()
        parts = [
            pb_spgemm(_kslice_a(a_csr, 0, 21), _kslice_b(b_csc, 0, 21)),
            pb_spgemm(_kslice_a(a_csr, 21, 40), _kslice_b(b_csc, 21, 40)),
        ]
        got = accumulate_partials(parts, shape=(25, 30))
        assert allclose(ref, got)

    def test_accumulate_single_and_none(self, rng):
        m = random_coo(rng, 10, 8, 40).to_csr()
        assert accumulate_partials([None, m, None]) is m
        empty = accumulate_partials([None, None], shape=(10, 8))
        assert empty.shape == (10, 8) and empty.nnz == 0


def _kslice_a(a_csr: CSRMatrix, k0: int, k1: int) -> CSCMatrix:
    """A[:, k0:k1] as CSC, zero-padded back to full k extent."""
    csc = a_csr.to_csc()
    sl = col_slice(csc, k0, k1)
    k = csc.shape[1]
    indptr = np.concatenate(
        [np.zeros(k0 + 1, dtype=sl.indptr.dtype), sl.indptr[1:],
         np.full(k - k1, sl.indptr[-1], dtype=sl.indptr.dtype)]
    )
    return CSCMatrix((csc.shape[0], k), indptr, sl.indices, sl.data, validate=False)


def _kslice_b(b_csc: CSCMatrix, k0: int, k1: int) -> CSRMatrix:
    """B[k0:k1, :] as CSR, zero-padded back to full k extent."""
    csr = b_csc.to_csr()
    sl = row_slice(csr, k0, k1)
    k = csr.shape[0]
    indptr = np.concatenate(
        [np.zeros(k0 + 1, dtype=sl.indptr.dtype), sl.indptr[1:],
         np.full(k - k1, sl.indptr[-1], dtype=sl.indptr.dtype)]
    )
    return CSRMatrix((k, csr.shape[1]), indptr, sl.indices, sl.data, validate=False)


class TestCLI:
    @pytest.fixture
    def er_mtx(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "a.mtx"
        assert main(
            ["matrix", "generate", "er", str(path), "--scale", "7",
             "--edge-factor", "4", "--seed", "1"]
        ) == 0
        return path

    def test_tiled_flag(self, er_mtx, capsys):
        from repro.cli import main

        rc = main(
            ["matrix", "multiply", str(er_mtx), "--tiled",
             "--memory-budget", "1000000"]
        )
        assert rc == 0
        assert "algorithm=tiled" in capsys.readouterr().out

    def test_pinned_tiles_flags(self, er_mtx, capsys):
        from repro.cli import main

        rc = main(
            ["matrix", "multiply", str(er_mtx), "--tiled",
             "--tile-rows", "64", "--tile-cols", "32"]
        )
        assert rc == 0
        assert "algorithm=tiled" in capsys.readouterr().out

    def test_tiled_conflicts_with_algorithm(self, er_mtx, capsys):
        from repro.cli import main

        rc = main(
            ["matrix", "multiply", str(er_mtx), "--tiled",
             "--algorithm", "hash"]
        )
        assert rc == 2
        assert "--tiled" in capsys.readouterr().err

    def test_tiled_flags_need_tiled_or_auto(self, er_mtx, capsys):
        from repro.cli import main

        rc = main(
            ["matrix", "multiply", str(er_mtx), "--tile-rows", "8",
             "--algorithm", "hash"]
        )
        assert rc == 2
        assert "tiled" in capsys.readouterr().err

    def test_budget_with_auto_allowed(self, er_mtx, capsys):
        from repro.cli import main

        rc = main(
            ["matrix", "multiply", str(er_mtx), "--algorithm", "auto",
             "--memory-budget", "100000000"]
        )
        assert rc == 0
        assert "C = A*B" in capsys.readouterr().out
