"""Shared helper functions for the test suite (import as tests.util)."""

from __future__ import annotations

import numpy as np

from repro.matrix import COOMatrix, CSRMatrix


def random_coo(rng, m, n, nnz, duplicates=False) -> COOMatrix:
    """Random COO with optional duplicate coordinates."""
    if nnz == 0 or m == 0 or n == 0:
        return COOMatrix((m, n), [], [], [])
    rows = rng.integers(0, m, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    if duplicates and nnz > 4:
        q = nnz // 4
        rows[:q] = rows[q : 2 * q]
        cols[:q] = cols[q : 2 * q]
    vals = rng.normal(size=nnz)
    return COOMatrix((m, n), rows, cols, vals)


def assert_same_matrix(c1: CSRMatrix, c2: CSRMatrix):
    from repro.matrix.ops import allclose

    assert c1.shape == c2.shape
    assert allclose(c1, c2), "matrices differ numerically"
